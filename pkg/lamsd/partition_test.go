package lamsd

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestServerPartitionersEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := doJSON(t, http.MethodGet, ts.URL+"/v1/partitioners", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var body struct {
		Partitioners []string `json:"partitioners"`
		Default      string   `json:"default"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Partitioners) < 2 || body.Partitioners[0] != "bfs" || body.Partitioners[1] != "bisect" {
		t.Errorf("partitioners = %v, want [bfs bisect ...]", body.Partitioners)
	}
	if body.Default != "bfs" {
		t.Errorf("default = %q, want bfs", body.Default)
	}
}

// TestServerPartitionedSmooth runs the same smooth twice through the HTTP
// API — single-engine and partitioned — on two identically generated
// meshes, and checks the partitioned response echoes its configuration and
// reports bit-identical quality and access accounting (domain generation is
// deterministic, so the meshes start equal).
func TestServerPartitionedSmooth(t *testing.T) {
	s, ts := newTestServer(t)
	single := createDomainMesh(t, ts.URL, "carabiner", 900)
	parted := createDomainMesh(t, ts.URL, "carabiner", 900)

	base := map[string]any{"max_iters": 3, "tol": -1.0, "workers": 2}
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+single.ID+"/smooth", base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single smooth: status %d: %s", resp.StatusCode, data)
	}
	var ref smoothResponse
	if err := json.Unmarshal(data, &ref); err != nil {
		t.Fatal(err)
	}

	req := map[string]any{"max_iters": 3, "tol": -1.0, "workers": 2,
		"partitions": 3, "partitioner": "bisect", "schedule": "guided"}
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+parted.ID+"/smooth", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned smooth: status %d: %s", resp.StatusCode, data)
	}
	var got smoothResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Partitions != 3 || got.Partitioner != "bisect" {
		t.Errorf("response echoes partitions=%d partitioner=%q, want 3/bisect", got.Partitions, got.Partitioner)
	}
	if got.Iterations != ref.Iterations || got.Accesses != ref.Accesses {
		t.Errorf("partitioned run did %d iters / %d accesses, single did %d / %d",
			got.Iterations, got.Accesses, ref.Iterations, ref.Accesses)
	}
	if got.InitialQuality != ref.InitialQuality || got.FinalQuality != ref.FinalQuality {
		t.Errorf("partitioned qualities %v -> %v, want bit-identical %v -> %v",
			got.InitialQuality, got.FinalQuality, ref.InitialQuality, ref.FinalQuality)
	}
	if ref.Partitions != 0 || ref.Partitioner != "" {
		t.Errorf("single-engine response leaked partition fields: %+v", ref)
	}
	if n := s.metrics.smoothPartitioned.Value(); n != 1 {
		t.Errorf("smooth_runs_partitioned = %d, want 1", n)
	}

	// A repeat partitioned request reuses the pooled engine (and its cached
	// decomposition).
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+parted.ID+"/smooth", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat partitioned smooth: status %d: %s", resp.StatusCode, data)
	}
	if n := s.metrics.smoothPartitioned.Value(); n != 2 {
		t.Errorf("smooth_runs_partitioned = %d after repeat, want 2", n)
	}
}

// TestServerPartitionedSmoothTet exercises the partitioned path on a dim=3
// mesh through the same endpoint.
func TestServerPartitionedSmoothTet(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes",
		map[string]any{"domain": "cube", "dim": 3, "target_verts": 400})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create cube: status %d: %s", resp.StatusCode, data)
	}
	var info meshInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth",
		map[string]any{"max_iters": 2, "tol": -1.0, "partitions": 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned tet smooth: status %d: %s", resp.StatusCode, data)
	}
	var got smoothResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Partitions != 4 || got.Partitioner != "bfs" || got.Iterations != 2 {
		t.Errorf("tet partitioned response %+v, want partitions=4 partitioner=bfs iterations=2", got)
	}
}

// TestServerPartitionedSmoothValidation pins the 400s: bad counts, unknown
// strategies, and in-place configurations that partitioned runs reject.
func TestServerPartitionedSmoothValidation(t *testing.T) {
	_, ts := newTestServer(t)
	info := createDomainMesh(t, ts.URL, "carabiner", 300)
	verts, _ := summaryCounts(t, info)
	bad := []map[string]any{
		{"partitions": -1},
		{"partitions": verts + 1},
		{"partitions": 2, "partitioner": "metis"},
		{"partitioner": "metis"}, // typo caught even without partitions
		{"partitions": 2, "gauss_seidel": true},
		{"partitions": 2, "kernel": "smart"},
	}
	for i, req := range bad {
		resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d (%v): status %d, want 400: %s", i, req, resp.StatusCode, data)
		}
	}
}
