// Package lamsd implements the lams smoothing service: an HTTP front-end
// over the pkg/lams pipeline that keeps uploaded meshes and warm smoothing
// engines resident between requests.
//
// The paper (conf_icpp_AupyPR16) frames reordering as a one-time
// preprocessing cost amortized over many smoothing runs; lamsd is that
// amortization argument deployed. A mesh is uploaded (or generated) once,
// reordered once, and then smoothed and analyzed as many times as clients
// ask, with every smooth request served by a pooled engine whose scratch
// buffers were grown by earlier runs — the hot path performs no per-request
// engine allocation.
//
// Endpoints:
//
//	POST   /v1/meshes               upload Triangle .node/.ele (multipart) or generate a domain (JSON)
//	GET    /v1/meshes               list resident meshes
//	GET    /v1/meshes/{id}          mesh summary (stats, quality, ordering)
//	DELETE /v1/meshes/{id}          evict a mesh
//	GET    /v1/meshes/{id}/export   download the mesh (?part=node|ele)
//	POST   /v1/meshes/{id}/reorder  apply a registered ordering in place
//	POST   /v1/meshes/{id}/smooth   run smoothing through the engine pool (?schedule=..., ?async=1)
//	GET    /v1/jobs                 list async smooth jobs
//	GET    /v1/jobs/{id}            poll an async job (live progress, ETA, result)
//	DELETE /v1/jobs/{id}            cancel a running job / delete a finished record
//	GET    /v1/meshes/{id}/analyze  reuse-distance / cache-simulation report
//	GET    /v1/orderings            registered ordering names
//	GET    /v1/domains              generatable domain names
//	GET    /v1/schedules            registered chunk-schedule names
//	GET    /v1/partitioners         registered domain-decomposition strategy names
//	GET    /healthz                 liveness + pool/store gauges
//	GET    /metrics                 expvar counters (JSON)
//
// Every request runs under a deadline: the server default, overridable per
// request with ?timeout=DURATION (clamped to the configured maximum), mapped
// onto the context.Context cancellation that pkg/lams threads through the
// sweep engine. A smooth cut off by its deadline leaves the mesh on the last
// completed sweep and returns 504. POST .../smooth?async=1 detaches the run
// from the HTTP request instead: it returns 202 with a job id immediately,
// the run proceeds under its own ?timeout-derived budget, and GET
// /v1/jobs/{id} reports live convergence progress until the result is ready.
//
// Servers created with Open (rather than New) are durable: resident meshes
// are snapshotted to the data directory — atomically, via temp file and
// rename — on a timer and at graceful Close, and restored on the next Open.
// Async jobs are crash-safe too: each accept is appended to a fsynced
// write-ahead journal before the 202 is sent, engine checkpoints are
// persisted per job, and Open replays the journal — re-enqueueing every
// interrupted job to resume from its checkpoint with results bit-identical
// to an uninterrupted run. Transient execution failures retry with capped
// exponential backoff (jobs_retried / jobs_resumed in /metrics), and Close
// drains running jobs for a bounded DrainTimeout before interrupting them.
//
// Every /v1 request is attributed to a tenant (the X-Tenant header, or
// "default") and admitted through per-tenant quotas: a token-bucket request
// rate limit, a resident-mesh cap, and an in-flight async job cap, each
// rejecting with 429 and a Retry-After hint when exceeded.
package lamsd

import (
	"expvar"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lams/internal/faultinject"
)

// Config collects the server limits. The zero value of any field selects
// the default noted on it.
type Config struct {
	// MaxConcurrentSmooths bounds how many smooth requests run at once;
	// further requests queue (and honor their deadlines while queued).
	// Default: GOMAXPROCS, capped at 8.
	MaxConcurrentSmooths int
	// MaxMeshes bounds the number of resident meshes. Default: 64.
	MaxMeshes int
	// MaxMeshVerts rejects uploads/generations beyond this vertex count.
	// Default: 4,000,000.
	MaxMeshVerts int
	// MaxUploadBytes bounds the request body of a mesh upload.
	// Default: 256 MiB.
	MaxUploadBytes int64
	// MaxWorkers caps the per-request smoothing worker count.
	// Default: GOMAXPROCS, floored at 4 (workers are static chunks, not
	// pinned threads, so modest oversubscription is harmless).
	MaxWorkers int
	// DefaultTimeout is the per-request deadline when the client does not
	// pass ?timeout. Default: 60s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines. Default: 10m.
	MaxTimeout time.Duration

	// DataDir, when non-empty, makes the mesh store durable: resident
	// meshes are snapshotted here and restored on the next Open. Default:
	// empty (in-memory only).
	DataDir string
	// SnapshotInterval is the periodic snapshot cadence when DataDir is
	// set. Default: 5m.
	SnapshotInterval time.Duration
	// JobTTL is how long finished async jobs are retained for result
	// pickup. Default: 15m.
	JobTTL time.Duration
	// MaxJobs bounds resident async jobs (running + retained). Default: 256.
	MaxJobs int

	// DrainTimeout is the grace period Close gives running async jobs to
	// finish before canceling them. On a durable server the jobs canceled at
	// expiry keep their journal record and checkpoint, so the next Open
	// resumes them. Default: 0 (cancel immediately).
	DrainTimeout time.Duration
	// Faults, when non-nil, arms deterministic fault injection across the
	// server's instrumented points (snapshot writes, journal appends, engine
	// pool checkouts, and — threaded into the smoothing engine — sweeps and
	// halo exchanges). Never set it in production; it exists for chaos
	// testing (cmd/lamsd -chaos, cmd/lamsload -chaos-restart).
	Faults *faultinject.Set

	// TenantRPS is the per-tenant request rate limit in requests/second;
	// <= 0 disables rate limiting. Default: 0.
	TenantRPS float64
	// TenantBurst is the rate limiter's bucket capacity. Default: twice
	// TenantRPS, floored at 1 (only meaningful when TenantRPS > 0).
	TenantBurst int
	// TenantMaxMeshes caps resident meshes per tenant; <= 0 disables.
	// Default: 0.
	TenantMaxMeshes int
	// TenantMaxJobs caps in-flight async jobs per tenant; <= 0 disables.
	// Default: 16.
	TenantMaxJobs int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentSmooths <= 0 {
		c.MaxConcurrentSmooths = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.MaxMeshes <= 0 {
		c.MaxMeshes = 64
	}
	if c.MaxMeshVerts <= 0 {
		c.MaxMeshVerts = 4_000_000
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = max(4, runtime.GOMAXPROCS(0))
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 5 * time.Minute
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.TenantBurst <= 0 && c.TenantRPS > 0 {
		c.TenantBurst = max(1, int(2*c.TenantRPS))
	}
	if c.TenantMaxJobs == 0 {
		c.TenantMaxJobs = 16
	}
	return c
}

// Option configures a Server.
type Option func(*Config)

// WithMaxConcurrentSmooths bounds concurrent smooth requests (the engine
// pool's capacity); further requests queue.
func WithMaxConcurrentSmooths(n int) Option {
	return func(c *Config) { c.MaxConcurrentSmooths = n }
}

// WithMaxMeshes bounds the number of resident meshes.
func WithMaxMeshes(n int) Option { return func(c *Config) { c.MaxMeshes = n } }

// WithMaxMeshVerts bounds the vertex count of uploaded or generated meshes.
func WithMaxMeshVerts(n int) Option { return func(c *Config) { c.MaxMeshVerts = n } }

// WithMaxUploadBytes bounds the mesh-upload request body size.
func WithMaxUploadBytes(n int64) Option { return func(c *Config) { c.MaxUploadBytes = n } }

// WithMaxWorkers caps the per-request smoothing worker count.
func WithMaxWorkers(n int) Option { return func(c *Config) { c.MaxWorkers = n } }

// WithTimeouts sets the default and maximum per-request deadlines.
func WithTimeouts(def, max time.Duration) Option {
	return func(c *Config) {
		c.DefaultTimeout = def
		c.MaxTimeout = max
	}
}

// WithPersistence makes the mesh store durable: meshes are restored from
// dir at Open and snapshotted back every interval and at Close. A zero
// interval keeps the default cadence.
func WithPersistence(dir string, interval time.Duration) Option {
	return func(c *Config) {
		c.DataDir = dir
		c.SnapshotInterval = interval
	}
}

// WithJobRetention sets how long finished async jobs stay fetchable and how
// many jobs may be resident at once.
func WithJobRetention(ttl time.Duration, maxJobs int) Option {
	return func(c *Config) {
		c.JobTTL = ttl
		c.MaxJobs = maxJobs
	}
}

// WithDrainTimeout gives running async jobs up to d to finish at Close
// before they are canceled (and, on a durable server, left for the next
// Open to resume).
func WithDrainTimeout(d time.Duration) Option {
	return func(c *Config) { c.DrainTimeout = d }
}

// WithFaultInjection arms the server's deterministic fault-injection points
// with fs. Chaos testing only; see Config.Faults.
func WithFaultInjection(fs *faultinject.Set) Option {
	return func(c *Config) { c.Faults = fs }
}

// WithTenantQuotas sets the per-tenant admission limits: request rate
// (tokens/second, with bucket capacity burst), resident meshes, and
// in-flight async jobs. Zero values disable the corresponding limit, except
// maxJobs where a negative disables and zero keeps the default.
func WithTenantQuotas(rps float64, burst, maxMeshes, maxJobs int) Option {
	return func(c *Config) {
		c.TenantRPS = rps
		c.TenantBurst = burst
		c.TenantMaxMeshes = maxMeshes
		c.TenantMaxJobs = maxJobs
	}
}

// Server is the lamsd HTTP service. Create one with New (in-memory) or Open
// (durable); serve its Handler. It is safe for concurrent use.
type Server struct {
	cfg     Config
	store   *meshStore
	pool    *enginePool
	jobs    *jobStore
	quotas  *tenantQuotas
	metrics *metrics
	mux     *http.ServeMux
	start   time.Time

	// journal is the async-job write-ahead log (nil on in-memory servers;
	// every append through a nil journal is a no-op). See journal.go.
	journal *jobJournal

	// Persistence state; see persist.go. lastSnap is the store mutation
	// counter at the last successful snapshot, snapMu serializes snapshot
	// writes, stopSnap/snapWG manage the periodic snapshot goroutine.
	lastSnap  atomic.Uint64
	snapMu    sync.Mutex
	stopSnap  chan struct{}
	snapWG    sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// New assembles an in-memory Server with the given options. A DataDir
// configured through New is honored by Snapshot but nothing is restored and
// no periodic snapshots run; use Open for the full durable lifecycle.
func New(opts ...Option) *Server {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   newMeshStore(cfg.MaxMeshes),
		pool:    newEnginePool(cfg.MaxConcurrentSmooths, cfg.Faults),
		jobs:    newJobStore(cfg.JobTTL, cfg.MaxJobs),
		quotas:  newTenantQuotas(cfg),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	// Live gauges alongside the counters: rendered at scrape time.
	s.metrics.vars.Set("uptime_seconds", expvar.Func(func() any { return time.Since(s.start).Seconds() }))
	s.metrics.vars.Set("pool", expvar.Func(func() any { return s.pool.Stats() }))
	s.metrics.vars.Set("meshes_resident", expvar.Func(func() any { return s.store.Len() }))
	s.metrics.vars.Set("jobs_resident", expvar.Func(func() any { return s.jobs.Len() }))
	s.routes()
	return s
}

// Open assembles a Server and, when a data directory is configured, brings
// up the durable lifecycle: any stale partial snapshot is discarded, the
// last complete snapshot is restored, the job journal is replayed —
// re-enqueueing every job that was accepted but never finished, each
// resuming from its persisted engine checkpoint — and the periodic
// snapshotter starts. Pair it with Close.
func Open(opts ...Option) (*Server, error) {
	s := New(opts...)
	if s.cfg.DataDir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	// A leftover temp file is an interrupted snapshot write; the complete
	// snapshot it would have replaced is still in place.
	os.Remove(filepath.Join(s.cfg.DataDir, snapshotTmp))
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	// The freshly-restored state matches the snapshot it came from.
	s.lastSnap.Store(s.store.Mutations())
	if err := s.recoverJobs(); err != nil {
		return nil, err
	}
	s.startSnapshotLoop()
	return s, nil
}

// recoverJobs replays the job journal, compacts it down to the interrupted
// work, and re-enqueues every pending job: the crash-recovery half of the
// durable job queue. Jobs whose mesh or plan no longer reconstructs are
// recorded as failed rather than dropped — an acknowledged job always
// reaches an observable terminal state.
func (s *Server) recoverJobs() error {
	pending, maxSeq, err := replayJournal(s.cfg.DataDir)
	if err != nil {
		return err
	}
	if err := compactJournal(s.cfg.DataDir, pending); err != nil {
		return err
	}
	journal, err := openJobJournal(s.cfg.DataDir, s.cfg.Faults)
	if err != nil {
		return err
	}
	s.journal = journal
	s.jobs.setNextSeq(maxSeq)

	for i := range pending {
		pj := &pending[i]
		job := &smoothJob{
			id:       pj.id,
			seq:      pj.seq,
			tenant:   pj.tenant,
			meshID:   pj.meshID,
			created:  pj.created,
			maxIters: pj.maxIters,
			timeout:  pj.timeout,
			attempts: pj.attempts,
			state:    jobQueued,
		}
		rec := s.store.Get(pj.meshID)
		var planErr error
		var plan smoothPlan
		if rec == nil {
			planErr = fmt.Errorf("mesh %q did not survive the restart", pj.meshID)
		} else {
			plan, planErr = s.planSmooth(rec, pj.request)
		}
		if planErr != nil {
			now := time.Now()
			job.state = jobFailed
			job.started, job.finished = now, now
			job.errMsg = planErr.Error()
			job.errStatus = http.StatusGone
			s.jobs.restore(job, false)
			s.metrics.jobsFailed.Add(1)
			_ = s.journal.append(journalRecord{Op: opFailed, Job: job.id, Error: job.errMsg})
			removeJobCheckpoint(s.cfg.DataDir, job.id)
			continue
		}
		job.ckpt = loadJobCheckpoint(s.cfg.DataDir, pj.id)
		s.quotas.forceAcquireJob(pj.tenant)
		s.jobs.restore(job, true)
		s.metrics.jobsResumed.Add(1)
		s.startJob(job, rec, plan)
	}
	return nil
}

// Close shuts the server down gracefully: new job submissions are rejected,
// in-flight async jobs get DrainTimeout to finish before being canceled
// (each commits its last completed sweep; on a durable server the canceled
// ones keep their journal record and checkpoint for the next Open to
// resume), the periodic snapshotter stops, and — when a data directory is
// configured — a final snapshot captures the resident meshes. Safe to call
// more than once; subsequent calls return the first result.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.jobs.closeWithDrain(s.cfg.DrainTimeout)
		if s.stopSnap != nil {
			close(s.stopSnap)
			s.snapWG.Wait()
		}
		if s.cfg.DataDir != "" {
			s.closeErr = s.snapshotIfDirty()
		}
		if err := s.journal.close(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
	})
	return s.closeErr
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// routes wires every endpoint through the shared instrumentation (request
// counters) and deadline middleware. /v1 routes additionally pass the
// tenant layer: X-Tenant resolution and per-tenant rate limiting. The probe
// endpoints stay outside it so health checks and scrapes are never
// throttled.
func (s *Server) routes() {
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handleAPI("GET /v1/orderings", s.handleOrderings)
	s.handleAPI("GET /v1/domains", s.handleDomains)
	s.handleAPI("GET /v1/schedules", s.handleSchedules)
	s.handleAPI("GET /v1/partitioners", s.handlePartitioners)
	s.handleAPI("POST /v1/meshes", s.handleCreateMesh)
	s.handleAPI("GET /v1/meshes", s.handleListMeshes)
	s.handleAPI("GET /v1/meshes/{id}", s.handleGetMesh)
	s.handleAPI("DELETE /v1/meshes/{id}", s.handleDeleteMesh)
	s.handleAPI("GET /v1/meshes/{id}/export", s.handleExportMesh)
	s.handleAPI("POST /v1/meshes/{id}/reorder", s.handleReorderMesh)
	s.handleAPI("POST /v1/meshes/{id}/smooth", s.handleSmoothMesh)
	s.handleAPI("GET /v1/meshes/{id}/analyze", s.handleAnalyzeMesh)
	s.handleAPI("GET /v1/jobs", s.handleListJobs)
	s.handleAPI("GET /v1/jobs/{id}", s.handleGetJob)
	s.handleAPI("DELETE /v1/jobs/{id}", s.handleCancelJob)
}

func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(pattern, s.withDeadline(h)))
}

func (s *Server) handleAPI(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(pattern, s.withTenant(s.withDeadline(h))))
}
