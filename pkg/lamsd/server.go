// Package lamsd implements the lams smoothing service: an HTTP front-end
// over the pkg/lams pipeline that keeps uploaded meshes and warm smoothing
// engines resident between requests.
//
// The paper (conf_icpp_AupyPR16) frames reordering as a one-time
// preprocessing cost amortized over many smoothing runs; lamsd is that
// amortization argument deployed. A mesh is uploaded (or generated) once,
// reordered once, and then smoothed and analyzed as many times as clients
// ask, with every smooth request served by a pooled engine whose scratch
// buffers were grown by earlier runs — the hot path performs no per-request
// engine allocation.
//
// Endpoints:
//
//	POST   /v1/meshes               upload Triangle .node/.ele (multipart) or generate a domain (JSON)
//	GET    /v1/meshes               list resident meshes
//	GET    /v1/meshes/{id}          mesh summary (stats, quality, ordering)
//	DELETE /v1/meshes/{id}          evict a mesh
//	GET    /v1/meshes/{id}/export   download the mesh (?part=node|ele)
//	POST   /v1/meshes/{id}/reorder  apply a registered ordering in place
//	POST   /v1/meshes/{id}/smooth   run smoothing through the engine pool (?schedule=static|guided|stealing)
//	GET    /v1/meshes/{id}/analyze  reuse-distance / cache-simulation report
//	GET    /v1/orderings            registered ordering names
//	GET    /v1/domains              generatable domain names
//	GET    /v1/schedules            registered chunk-schedule names
//	GET    /v1/partitioners         registered domain-decomposition strategy names
//	GET    /healthz                 liveness + pool/store gauges
//	GET    /metrics                 expvar counters (JSON)
//
// Every request runs under a deadline: the server default, overridable per
// request with ?timeout=DURATION (clamped to the configured maximum), mapped
// onto the context.Context cancellation that pkg/lams threads through the
// sweep engine. A smooth cut off by its deadline leaves the mesh on the last
// completed sweep and returns 504.
package lamsd

import (
	"expvar"
	"net/http"
	"runtime"
	"time"
)

// Config collects the server limits. The zero value of any field selects
// the default noted on it.
type Config struct {
	// MaxConcurrentSmooths bounds how many smooth requests run at once;
	// further requests queue (and honor their deadlines while queued).
	// Default: GOMAXPROCS, capped at 8.
	MaxConcurrentSmooths int
	// MaxMeshes bounds the number of resident meshes. Default: 64.
	MaxMeshes int
	// MaxMeshVerts rejects uploads/generations beyond this vertex count.
	// Default: 4,000,000.
	MaxMeshVerts int
	// MaxUploadBytes bounds the request body of a mesh upload.
	// Default: 256 MiB.
	MaxUploadBytes int64
	// MaxWorkers caps the per-request smoothing worker count.
	// Default: GOMAXPROCS, floored at 4 (workers are static chunks, not
	// pinned threads, so modest oversubscription is harmless).
	MaxWorkers int
	// DefaultTimeout is the per-request deadline when the client does not
	// pass ?timeout. Default: 60s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines. Default: 10m.
	MaxTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentSmooths <= 0 {
		c.MaxConcurrentSmooths = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.MaxMeshes <= 0 {
		c.MaxMeshes = 64
	}
	if c.MaxMeshVerts <= 0 {
		c.MaxMeshVerts = 4_000_000
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = max(4, runtime.GOMAXPROCS(0))
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	return c
}

// Option configures a Server.
type Option func(*Config)

// WithMaxConcurrentSmooths bounds concurrent smooth requests (the engine
// pool's capacity); further requests queue.
func WithMaxConcurrentSmooths(n int) Option {
	return func(c *Config) { c.MaxConcurrentSmooths = n }
}

// WithMaxMeshes bounds the number of resident meshes.
func WithMaxMeshes(n int) Option { return func(c *Config) { c.MaxMeshes = n } }

// WithMaxMeshVerts bounds the vertex count of uploaded or generated meshes.
func WithMaxMeshVerts(n int) Option { return func(c *Config) { c.MaxMeshVerts = n } }

// WithMaxUploadBytes bounds the mesh-upload request body size.
func WithMaxUploadBytes(n int64) Option { return func(c *Config) { c.MaxUploadBytes = n } }

// WithMaxWorkers caps the per-request smoothing worker count.
func WithMaxWorkers(n int) Option { return func(c *Config) { c.MaxWorkers = n } }

// WithTimeouts sets the default and maximum per-request deadlines.
func WithTimeouts(def, max time.Duration) Option {
	return func(c *Config) {
		c.DefaultTimeout = def
		c.MaxTimeout = max
	}
}

// Server is the lamsd HTTP service. Create one with New and serve its
// Handler; it is safe for concurrent use.
type Server struct {
	cfg     Config
	store   *meshStore
	pool    *enginePool
	metrics *metrics
	mux     *http.ServeMux
	start   time.Time
}

// New assembles a Server with the given options.
func New(opts ...Option) *Server {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   newMeshStore(cfg.MaxMeshes),
		pool:    newEnginePool(cfg.MaxConcurrentSmooths),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	// Live gauges alongside the counters: rendered at scrape time.
	s.metrics.vars.Set("uptime_seconds", expvar.Func(func() any { return time.Since(s.start).Seconds() }))
	s.metrics.vars.Set("pool", expvar.Func(func() any { return s.pool.Stats() }))
	s.metrics.vars.Set("meshes_resident", expvar.Func(func() any { return s.store.Len() }))
	s.routes()
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// routes wires every endpoint through the shared instrumentation (request
// counters) and deadline middleware.
func (s *Server) routes() {
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /v1/orderings", s.handleOrderings)
	s.handle("GET /v1/domains", s.handleDomains)
	s.handle("GET /v1/schedules", s.handleSchedules)
	s.handle("GET /v1/partitioners", s.handlePartitioners)
	s.handle("POST /v1/meshes", s.handleCreateMesh)
	s.handle("GET /v1/meshes", s.handleListMeshes)
	s.handle("GET /v1/meshes/{id}", s.handleGetMesh)
	s.handle("DELETE /v1/meshes/{id}", s.handleDeleteMesh)
	s.handle("GET /v1/meshes/{id}/export", s.handleExportMesh)
	s.handle("POST /v1/meshes/{id}/reorder", s.handleReorderMesh)
	s.handle("POST /v1/meshes/{id}/smooth", s.handleSmoothMesh)
	s.handle("GET /v1/meshes/{id}/analyze", s.handleAnalyzeMesh)
}

func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(pattern, s.withDeadline(h)))
}
