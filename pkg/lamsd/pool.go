package lamsd

import (
	"context"
	"sync"
	"sync/atomic"

	"lams/internal/faultinject"
	"lams/pkg/lams"
)

// engineKey identifies a smoothing configuration whose engines are
// interchangeable. Engines are pooled per dimension × kernel × worker count
// × schedule × partitioning so a warm engine handed to a request has
// scratch buffers (including the cached scheduler's per-worker state and,
// for partitioned runs, the cached mesh decomposition) shaped by the same
// kind of run that grew them — a lams.Smoother serves both dimensions, but
// keying on Dim keeps a 2D-heavy workload from thrashing the 3D buffers and
// vice versa.
type engineKey struct {
	Dim      int
	Kernel   string
	Workers  int
	Schedule string
	// Partitions and Partitioner are 1 and "" for single-engine runs; a
	// partitioned engine's driver caches a per-mesh decomposition, so
	// pooling it separately keeps that cache warm for repeat requests with
	// the same layout.
	Partitions  int
	Partitioner string
}

// enginePool is a keyed pool of warm lams.Smoother engines with bounded
// concurrency. Acquire blocks (the request queue) until one of the
// pool's concurrency slots frees up or the request's context expires; the
// engine it returns has its ~O(mesh) scratch buffers already grown from
// earlier runs, so steady-state smooth requests do not reallocate them.
type enginePool struct {
	capacity int
	sem      chan struct{}
	// faults, when armed, injects a checkout failure at Acquire entry
	// (faultinject.PointPoolAcquire) — the rehearsal for capacity-layer
	// outages; the job runner's retry loop absorbs them.
	faults *faultinject.Set

	mu        sync.Mutex
	idle      map[engineKey][]*lams.Smoother
	totalIdle int // parked engines across all keys, bounded by capacity
	// condemned lists meshes deleted while engines were checked out: an
	// in-flight engine may still hold a decomposition cache referencing
	// one, so Release sweeps returning engines against this list. Entries
	// accumulate only while the pool is busy and are cleared the moment
	// the last engine comes back (every parked engine has been swept by
	// then, by EvictMesh directly or by its own Release). Bounded by
	// condemnedCap; on overflow condemnedAll makes Release drop returning
	// engines' partition caches wholesale instead — a conservative
	// rebuild, never a leak.
	condemned    []any
	condemnedAll bool

	queued atomic.Int64
	inUse  atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

// condemnedCap bounds the deferred-eviction list; see the field comment.
const condemnedCap = 64

// PoolStats is a point-in-time snapshot of the engine pool, reported by
// /healthz, /metrics, and every smooth response.
type PoolStats struct {
	// Capacity is the maximum number of concurrently checked-out engines.
	Capacity int `json:"capacity"`
	// InUse is the number of engines currently checked out.
	InUse int64 `json:"in_use"`
	// Queued is the number of requests waiting for a concurrency slot.
	Queued int64 `json:"queued"`
	// Idle is the number of warm engines parked across all keys.
	Idle int `json:"idle"`
	// Hits and Misses count checkouts served by a warm engine vs. a fresh
	// allocation. A steady-state service converges to all hits.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

func newEnginePool(capacity int, faults *faultinject.Set) *enginePool {
	if capacity < 1 {
		capacity = 1
	}
	return &enginePool{
		capacity: capacity,
		sem:      make(chan struct{}, capacity),
		faults:   faults,
		idle:     make(map[engineKey][]*lams.Smoother),
	}
}

// Acquire checks out an engine for key, waiting in the request queue for a
// concurrency slot. It returns ctx.Err() if the context expires first, so a
// queued request honors its deadline without ever holding a slot.
func (p *enginePool) Acquire(ctx context.Context, key engineKey) (*lams.Smoother, error) {
	if err := p.faults.Fire(faultinject.PointPoolAcquire); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.queued.Add(1)
	select {
	case p.sem <- struct{}{}:
		p.queued.Add(-1)
	case <-ctx.Done():
		p.queued.Add(-1)
		return nil, ctx.Err()
	}

	p.mu.Lock()
	var eng *lams.Smoother
	if list := p.idle[key]; len(list) > 0 {
		eng = list[len(list)-1]
		p.idle[key] = list[:len(list)-1]
		p.totalIdle--
	}
	// inUse is incremented while still holding mu so EvictMesh always sees
	// a consistent picture: every engine is either parked (swept directly)
	// or counted in-use (condemned-list sweep at Release). An increment
	// outside the lock would open a window where a just-popped engine is
	// in neither set.
	p.inUse.Add(1)
	p.mu.Unlock()

	if eng != nil {
		p.hits.Add(1)
	} else {
		p.misses.Add(1)
		eng = lams.NewSmoother()
	}
	return eng, nil
}

// Release returns an engine to the pool and frees its concurrency slot.
// At most capacity engines stay parked across ALL keys — matching the
// actual concurrency bound — so a client sweeping many kernel × workers
// combinations cannot pin an unbounded set of O(mesh) scratch buffers;
// engines beyond the bound are dropped for the garbage collector.
func (p *enginePool) Release(key engineKey, eng *lams.Smoother) {
	p.mu.Lock()
	// Sweep the returning engine against meshes deleted while it was
	// checked out, so a warm decomposition cache cannot pin a deleted
	// mesh; see EvictMesh.
	if p.condemnedAll {
		eng.DropPartitionCaches()
	} else {
		for _, m := range p.condemned {
			eng.DropMeshCache(m)
		}
	}
	if p.totalIdle < p.capacity {
		p.idle[key] = append(p.idle[key], eng)
		p.totalIdle++
	}
	if p.inUse.Add(-1) == 0 {
		// Every engine is parked and swept: the condemned list has done
		// its job (and holding the mesh pointers any longer would itself
		// pin their memory).
		p.condemned = nil
		p.condemnedAll = false
	}
	p.mu.Unlock()
	<-p.sem
}

// EvictMesh drops every parked engine's per-mesh caches referencing m (the
// *lams.Mesh or *lams.TetMesh of a mesh that was deleted or replaced by a
// reorder). Engines currently checked out are covered by the condemned
// list, which Release consults when they come back. Without this, a warm
// partitioned engine would pin the deleted mesh — and its O(mesh)
// decomposition — until the store emptied and Trim ran.
func (p *enginePool) EvictMesh(m any) {
	if m == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, list := range p.idle {
		for _, eng := range list {
			eng.DropMeshCache(m)
		}
	}
	if p.inUse.Load() > 0 && !p.condemnedAll {
		if len(p.condemned) < condemnedCap {
			p.condemned = append(p.condemned, m)
		} else {
			p.condemned = nil
			p.condemnedAll = true
		}
	}
}

// Trim resets and drops every parked engine. The server calls it when the
// mesh store empties: warm buffers sized for meshes that no longer exist
// are pure memory overhead.
func (p *enginePool) Trim() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, list := range p.idle {
		for _, eng := range list {
			eng.Reset()
		}
		delete(p.idle, key)
	}
	p.totalIdle = 0
}

// Stats snapshots the pool gauges and counters.
func (p *enginePool) Stats() PoolStats {
	p.mu.Lock()
	idle := p.totalIdle
	p.mu.Unlock()
	return PoolStats{
		Capacity: p.capacity,
		InUse:    p.inUse.Load(),
		Queued:   p.queued.Load(),
		Idle:     idle,
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
	}
}
