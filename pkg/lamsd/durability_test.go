package lamsd

// Tests for the crash-safe job queue: journal replay after a crash or an
// interrupted shutdown, checkpointed resume landing bit-identically on the
// uninterrupted result, retry-with-backoff across every instrumented fault
// point, the durable-accept contract (no 202 without a journal record), and
// bounded drain at Close.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lams/internal/faultinject"
)

// crashClose tears a durable server down the way a crash would: running
// jobs are cut without journaling a terminal record (the closed flag makes
// the runner treat the cancellation as an interruption), the snapshotter
// stops without a final snapshot, and the journal file is simply closed.
// What is on disk afterwards is exactly what a kill -9 would have left,
// modulo the torn tail the replay path tolerates anyway.
func crashClose(s *Server) {
	s.jobs.closeWithDrain(0)
	if s.stopSnap != nil {
		close(s.stopSnap)
		s.snapWG.Wait()
	}
	_ = s.journal.close()
}

// genMeshID generates a deterministic server-side mesh and returns its id.
func genMeshID(t *testing.T, base, domain string, verts int) string {
	t.Helper()
	return createDomainMesh(t, base, domain, verts).ID
}

// submitAsync submits an async smooth job and returns its id.
func submitAsync(t *testing.T, base, meshID string, body map[string]any) string {
	t.Helper()
	resp, data := doJSON(t, http.MethodPost, base+"/v1/meshes/"+meshID+"/smooth?async=1&timeout=5m", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit async job: status %d: %s", resp.StatusCode, data)
	}
	var info jobInfo
	mustUnmarshal(t, data, &info)
	return info.ID
}

// waitJobIterations polls until the job has completed at least n measured
// sweeps (so at least one checkpoint exists when check_every <= n).
func waitJobIterations(t *testing.T, base, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll job %s: status %d: %s", id, resp.StatusCode, data)
		}
		var info jobInfo
		mustUnmarshal(t, data, &info)
		if info.State.terminal() {
			t.Fatalf("job %s ended %s before reaching %d iterations", id, info.State, n)
		}
		if info.Iterations >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %d iterations in time", id, n)
}

// referenceSmooth runs the same request synchronously on a fresh in-memory
// server over the same generated mesh and returns the response plus the
// exported node payload: the uninterrupted baseline crash recovery must
// reproduce byte-for-byte.
func referenceSmooth(t *testing.T, domain string, verts int, body map[string]any) (smoothResponse, []byte) {
	t.Helper()
	_, ts := newTestServer(t)
	id := genMeshID(t, ts.URL, domain, verts)
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+id+"/smooth?timeout=5m", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference smooth: status %d: %s", resp.StatusCode, data)
	}
	var sr smoothResponse
	mustUnmarshal(t, data, &sr)
	return sr, exportPart(t, ts.URL, id, "node")
}

// smoothJobBody is the job every crash/retry test runs: long enough to
// interrupt, Jacobi (so partitioned variants stay legal), convergence
// criterion disabled so the iteration count is deterministic.
func smoothJobBody(extra map[string]any) map[string]any {
	body := map[string]any{
		"kernel":      "plain",
		"workers":     2,
		"max_iters":   400,
		"tol":         -1.0,
		"check_every": 5,
	}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

// TestJournalReplayResumesInterruptedJob is the headline property: a job
// acknowledged with 202, interrupted mid-run by a crash, is re-enqueued on
// the next Open, resumes from its persisted checkpoint, and finishes with
// results byte-identical to a run that was never interrupted.
func TestJournalReplayResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	const domain, verts = "carabiner", 3000
	body := smoothJobBody(nil)

	s1, ts1 := newDurableServer(t, dir)
	meshID := genMeshID(t, ts1.URL, domain, verts)
	if err := s1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	jobID := submitAsync(t, ts1.URL, meshID, body)
	// Let the run get past several checkpoint emissions, then crash.
	waitJobIterations(t, ts1.URL, jobID, 25)
	crashClose(s1)

	if _, err := os.Stat(jobCheckpointPath(dir, jobID)); err != nil {
		t.Fatalf("interrupted job left no checkpoint file: %v", err)
	}

	s2, ts2 := newDurableServer(t, dir)
	defer s2.Close()
	if got := s2.metrics.jobsResumed.Value(); got != 1 {
		t.Fatalf("jobs_resumed = %d, want 1", got)
	}
	info := pollJob(t, ts2.URL, jobID, jobDone)
	if info.Result == nil {
		t.Fatal("resumed job finished without a result")
	}
	if info.Result.Iterations != 400 {
		t.Fatalf("resumed job ran %d iterations, want 400", info.Result.Iterations)
	}
	node := exportPart(t, ts2.URL, meshID, "node")

	wantResp, wantNode := referenceSmooth(t, domain, verts, body)
	if info.Result.FinalQuality != wantResp.FinalQuality {
		t.Fatalf("final quality %v after resume, want %v", info.Result.FinalQuality, wantResp.FinalQuality)
	}
	if info.Result.Accesses != wantResp.Accesses {
		t.Fatalf("accesses %d after resume, want %d", info.Result.Accesses, wantResp.Accesses)
	}
	if !bytes.Equal(node, wantNode) {
		t.Fatal("resumed job's coordinates differ from the uninterrupted run")
	}
	// The terminal record must have cleaned up: nothing pending, no
	// checkpoint file left behind.
	if _, err := os.Stat(jobCheckpointPath(dir, jobID)); !os.IsNotExist(err) {
		t.Fatalf("terminal job's checkpoint file still present (err=%v)", err)
	}
	pending, _, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("journal still holds %d pending jobs after completion", len(pending))
	}
}

// TestCloseInterruptsAndResumes is the graceful-shutdown variant: Close with
// no drain budget cancels the running job, which must NOT journal a terminal
// record — the next Open owes it a resume.
func TestCloseInterruptsAndResumes(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, dir)
	meshID := genMeshID(t, ts1.URL, "carabiner", 3000)
	if err := s1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	jobID := submitAsync(t, ts1.URL, meshID, smoothJobBody(nil))
	waitJobIterations(t, ts1.URL, jobID, 10)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newDurableServer(t, dir)
	defer s2.Close()
	if got := s2.metrics.jobsResumed.Value(); got != 1 {
		t.Fatalf("jobs_resumed = %d, want 1", got)
	}
	info := pollJob(t, ts2.URL, jobID, jobDone)
	if info.Result == nil || info.Result.Iterations != 400 {
		t.Fatalf("resumed job result = %+v, want a 400-iteration result", info.Result)
	}
}

// TestDrainTimeoutLetsJobsFinish gives Close a generous drain budget: the
// running job completes on its own, reaches done (not canceled), and leaves
// no pending work for the next boot.
func TestDrainTimeoutLetsJobsFinish(t *testing.T) {
	dir := t.TempDir()
	s, ts := newDurableServer(t, dir, WithDrainTimeout(time.Minute))
	meshID := genMeshID(t, ts.URL, "carabiner", 1000)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	jobID := submitAsync(t, ts.URL, meshID, map[string]any{
		"kernel": "plain", "max_iters": 30, "tol": -1.0,
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	job := s.jobs.jobs[jobID]
	if job == nil {
		t.Fatalf("job %s gone after drained Close", jobID)
	}
	if st := job.info().State; st != jobDone {
		t.Fatalf("job state after drained Close = %s, want done", st)
	}
	pending, _, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("drained Close left %d pending jobs in the journal", len(pending))
	}
}

// TestJobRetriesEveryFaultPoint arms each instrumented fault point in turn
// and asserts the async job retries through it — attempts recorded, the
// jobs_retried counter ticking — and still lands byte-identical to a run
// that never saw a fault.
func TestJobRetriesEveryFaultPoint(t *testing.T) {
	const domain, verts = "carabiner", 1500
	cases := []struct {
		point string
		after int
		extra map[string]any
	}{
		{faultinject.PointPoolAcquire, 1, nil},
		{faultinject.PointEngineSweep, 3, nil},
		{faultinject.PointExchangeSend, 2, map[string]any{"partitions": 3}},
		{faultinject.PointExchangeRecv, 2, map[string]any{"partitions": 3}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.point, func(t *testing.T) {
			body := smoothJobBody(tc.extra)
			body["max_iters"] = 60

			fs := faultinject.New()
			s, ts := newTestServer(t, WithFaultInjection(fs))
			meshID := genMeshID(t, ts.URL, domain, verts)
			fs.ArmAfter(tc.point, tc.after)
			jobID := submitAsync(t, ts.URL, meshID, body)
			info := pollJob(t, ts.URL, jobID, jobDone)
			if info.Attempts < 2 {
				t.Fatalf("job retried %d attempts, want >= 2", info.Attempts)
			}
			if got := s.metrics.jobsRetried.Value(); got < 1 {
				t.Fatalf("jobs_retried = %d, want >= 1", got)
			}
			if fs.Fired(tc.point) == 0 {
				t.Fatalf("fault point %s never fired", tc.point)
			}
			node := exportPart(t, ts.URL, meshID, "node")

			wantResp, wantNode := referenceSmooth(t, domain, verts, body)
			if info.Result.FinalQuality != wantResp.FinalQuality ||
				info.Result.Iterations != wantResp.Iterations ||
				info.Result.Accesses != wantResp.Accesses {
				t.Fatalf("retried result (iters=%d q=%v acc=%d) != fault-free result (iters=%d q=%v acc=%d)",
					info.Result.Iterations, info.Result.FinalQuality, info.Result.Accesses,
					wantResp.Iterations, wantResp.FinalQuality, wantResp.Accesses)
			}
			if !bytes.Equal(node, wantNode) {
				t.Fatal("retried job's coordinates differ from the fault-free run")
			}
		})
	}
}

// TestPersistentFaultExhaustsRetries: a fault that fires on every attempt
// runs the job out of its attempt budget and fails it — with the terminal
// record journaled, so a restart does not resurrect a poisoned job.
func TestPersistentFaultExhaustsRetries(t *testing.T) {
	dir := t.TempDir()
	fs := faultinject.New()
	s, ts := newDurableServer(t, dir, WithFaultInjection(fs))
	defer s.Close()
	meshID := genMeshID(t, ts.URL, "carabiner", 800)
	// Re-arm on every fire: Fire disarms a count-armed point after it
	// trips, so a "hard" outage is modeled by a probability-1 arming.
	fs.ArmProb(faultinject.PointPoolAcquire, 1.0, 1)
	jobID := submitAsync(t, ts.URL, meshID, smoothJobBody(nil))
	info := pollJob(t, ts.URL, jobID, jobFailed)
	if info.Attempts != maxJobAttempts {
		t.Fatalf("failed after %d attempts, want %d", info.Attempts, maxJobAttempts)
	}
	fs.Disarm(faultinject.PointPoolAcquire)
	pending, _, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("failed job still pending in the journal (%d entries)", len(pending))
	}
}

// TestJournalAppendFaultRejectsSubmission: if the accept record cannot be
// made durable there must be no 202 — and no leaked job, quota slot, or
// waitgroup count (Close would hang on a leak).
func TestJournalAppendFaultRejectsSubmission(t *testing.T) {
	dir := t.TempDir()
	fs := faultinject.New()
	s, ts := newDurableServer(t, dir, WithFaultInjection(fs))
	defer s.Close()
	meshID := genMeshID(t, ts.URL, "carabiner", 800)

	fs.ArmAfter(faultinject.PointJournalAppend, 1)
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+meshID+"/smooth?async=1", smoothJobBody(nil))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission with failing journal: status %d: %s", resp.StatusCode, data)
	}
	if n := s.jobs.Len(); n != 0 {
		t.Fatalf("rejected submission left %d jobs registered", n)
	}
	if n := s.quotas.InFlightJobs(DefaultTenant); n != 0 {
		t.Fatalf("rejected submission left %d quota slots held", n)
	}
	// The journal is healthy again: the next submission is acknowledged and
	// completes.
	jobID := submitAsync(t, ts.URL, meshID, map[string]any{
		"kernel": "plain", "max_iters": 10, "tol": -1.0,
	})
	pollJob(t, ts.URL, jobID, jobDone)
}

// TestReplayJournalTornTail hand-writes a journal whose final record is
// torn mid-line (the crash-mid-append signature): replay must keep every
// complete record and stop cleanly at the tear.
func TestReplayJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"op":"accept","job":"j1","seq":1,"tenant":"default","mesh_id":"m1","max_iters":50,"request":{}}`+"\n")
	fmt.Fprintf(&buf, `{"op":"accept","job":"j2","seq":2,"tenant":"default","mesh_id":"m1","max_iters":50,"request":{}}`+"\n")
	fmt.Fprintf(&buf, `{"op":"retry","job":"j2","attempt":2}`+"\n")
	fmt.Fprintf(&buf, `{"op":"done","job":"j1"}`+"\n")
	fmt.Fprintf(&buf, `{"op":"accept","job":"j3","seq":3,"ten`) // torn
	if err := os.WriteFile(filepath.Join(dir, journalName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	pending, maxSeq, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].id != "j2" {
		t.Fatalf("pending = %+v, want exactly j2", pending)
	}
	if pending[0].attempts != 2 {
		t.Fatalf("j2 attempts = %d, want 2 (from the retry record)", pending[0].attempts)
	}
	if maxSeq != 2 {
		t.Fatalf("maxSeq = %d, want 2 (the torn accept must not count)", maxSeq)
	}
	// Compaction rewrites just the pending accept; a second replay agrees.
	if err := compactJournal(dir, pending); err != nil {
		t.Fatal(err)
	}
	again, maxSeq2, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 || again[0].id != "j2" || again[0].attempts != 2 || maxSeq2 != 2 {
		t.Fatalf("post-compaction replay = %+v (maxSeq %d), want j2/attempts=2/maxSeq=2", again, maxSeq2)
	}
}

// TestSnapshotWriteFault: an injected snapshot failure surfaces as an error
// and a snapshot_errors tick while the previous complete snapshot survives
// for the next boot.
func TestSnapshotWriteFault(t *testing.T) {
	dir := t.TempDir()
	fs := faultinject.New()
	s, ts := newDurableServer(t, dir, WithFaultInjection(fs))
	meshID := genMeshID(t, ts.URL, "carabiner", 800)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}

	fs.ArmAfter(faultinject.PointSnapshotWrite, 1)
	s.store.Touch() // dirty the store so the snapshot is attempted
	if err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot with an armed fault returned nil")
	}
	if got := s.metrics.snapshotErrs.Value(); got != 1 {
		t.Fatalf("snapshot_errors = %d, want 1", got)
	}
	crashClose(s)

	s2, ts2 := newDurableServer(t, dir)
	defer s2.Close()
	resp, _ := doJSON(t, http.MethodGet, ts2.URL+"/v1/meshes/"+meshID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mesh %s lost after failed snapshot: status %d", meshID, resp.StatusCode)
	}
}

// TestJobStoreFullRetryAfter: the job-store-full 429 advertises Retry-After
// like every other throttle response.
func TestJobStoreFullRetryAfter(t *testing.T) {
	_, ts := newTestServer(t,
		WithJobRetention(time.Hour, 1),
		WithTenantQuotas(0, 0, 0, -1)) // job-cap disabled: reach the store cap itself
	meshID := genMeshID(t, ts.URL, "carabiner", 1500)
	submitAsync(t, ts.URL, meshID, smoothJobBody(nil))
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+meshID+"/smooth?async=1", smoothJobBody(nil))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("job-store-full 429 carries no Retry-After header")
	}
}

func mustUnmarshal(t *testing.T, data []byte, dst any) {
	t.Helper()
	if err := json.Unmarshal(data, dst); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
}
