package lamsd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"time"

	"lams/internal/mesh"
	"lams/pkg/lams"
)

// apiError is an error with an HTTP status. Handlers return it from their
// core logic; the shared error writer maps everything else to 500 (or to
// 504/503 for context expiry).
type apiError struct {
	Status int
	Msg    string
}

func (e apiError) Error() string { return e.Msg }

func apiErrorf(status int, format string, args ...any) apiError {
	return apiError{Status: status, Msg: fmt.Sprintf(format, args...)}
}

func errorStatus(err error) int {
	var ae apiError
	if errors.As(err, &ae) {
		return ae.Status
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := errorStatus(err)
	writeJSON(w, status, map[string]any{"status": status, "error": err.Error()})
}

// statusRecorder captures the response status for the error counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument counts requests and non-2xx responses per route.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Add(route, 1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		if rec.status >= 400 {
			s.metrics.errors.Add(route, 1)
		}
	}
}

// parseTimeout resolves the request's time budget: the configured default,
// or ?timeout=DURATION clamped to the configured maximum. Zero, negative,
// and unparsable values are a 400 — never an already-expired or unbounded
// context. Both the synchronous deadline middleware and the async job
// submission path (where the budget outlives the HTTP request) use it.
func (s *Server) parseTimeout(r *http.Request) (time.Duration, error) {
	d := s.cfg.DefaultTimeout
	if q := r.URL.Query().Get("timeout"); q != "" {
		pd, err := time.ParseDuration(q)
		if err != nil || pd <= 0 {
			return 0, apiErrorf(http.StatusBadRequest, "invalid timeout %q: want a positive Go duration like 30s", q)
		}
		if pd > s.cfg.MaxTimeout {
			pd = s.cfg.MaxTimeout
		}
		d = pd
	}
	return d, nil
}

// withDeadline maps the per-request deadline onto the request context.
// Work cut off by the deadline surfaces as 504.
func (s *Server) withDeadline(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d, err := s.parseTimeout(r)
		if err != nil {
			writeError(w, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// withTenant resolves the request's tenant (the X-Tenant header, or
// DefaultTenant) onto the context and admits the request through the
// tenant's token bucket. A drained bucket is a 429 with a Retry-After hint.
func (s *Server) withTenant(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.Header.Get("X-Tenant")
		if tenant == "" {
			tenant = DefaultTenant
		} else if !validTenant(tenant) {
			writeError(w, apiErrorf(http.StatusBadRequest,
				"invalid X-Tenant %q: want 1-64 characters from [A-Za-z0-9._-]", tenant))
			return
		}
		s.metrics.tenantCounter(tenant, "requests")
		if ok, retry := s.quotas.Allow(tenant); !ok {
			w.Header().Set("Retry-After", strconv.FormatInt(int64(retry/time.Second), 10))
			s.metrics.throttled.Add(1)
			s.metrics.tenantCounter(tenant, "throttled")
			writeError(w, apiErrorf(http.StatusTooManyRequests,
				"tenant %q over its request rate limit; retry in %s", tenant, retry))
			return
		}
		h(w, r.WithContext(context.WithValue(r.Context(), tenantKey, tenant)))
	}
}

func decodeJSON(r *http.Request, dst any, allowEmpty bool) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if allowEmpty && errors.Is(err, io.EOF) {
			return nil
		}
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return err
		}
		return apiErrorf(http.StatusBadRequest, "invalid JSON body: %v", err)
	}
	return nil
}

// meshInfo is the JSON summary of a resident mesh. Summary holds
// lams.MeshStats for dim=2 meshes and lams.TetMeshStats for dim=3.
type meshInfo struct {
	ID          string    `json:"id"`
	Name        string    `json:"name"`
	Dim         int       `json:"dim"`
	Ordering    string    `json:"ordering"`
	OrderTimeMS float64   `json:"order_time_ms"`
	Created     time.Time `json:"created"`
	SmoothRuns  int64     `json:"smooth_runs"`
	Quality     float64   `json:"quality"`
	Summary     any       `json:"summary"`
}

// globalQuality computes the record's default-metric global quality; the
// caller must hold the mesh read lock.
func (rec *meshRecord) globalQuality() float64 {
	if rec.dim == 3 {
		return lams.TetGlobalQuality(rec.tet, nil)
	}
	return lams.GlobalQuality(rec.mesh, nil)
}

// info snapshots the record's display metadata, refreshing the cached
// quality first if an operation left it stale (one O(n) pass, then cached —
// listings stay cheap however many meshes are resident). It never waits on
// the mesh lock: if a smooth is in flight, the previous cached quality is
// served and the refresh happens on a later view.
func (rec *meshRecord) info() meshInfo {
	rec.metaMu.Lock()
	stale := rec.qualityStale
	rec.metaMu.Unlock()
	if stale && rec.mu.TryRLock() {
		q := rec.globalQuality()
		gen := rec.gen.Load()
		rec.mu.RUnlock()
		rec.metaMu.Lock()
		// Commit only if no mutation slipped in between the read lock and
		// here — otherwise the freshly-computed value is already stale.
		if rec.qualityStale && rec.gen.Load() == gen {
			rec.quality = q
			rec.qualityStale = false
		}
		rec.metaMu.Unlock()
	}
	rec.metaMu.Lock()
	defer rec.metaMu.Unlock()
	return meshInfo{
		ID:          rec.id,
		Name:        rec.name,
		Dim:         rec.dim,
		Ordering:    rec.ordering,
		OrderTimeMS: float64(rec.orderTime) / float64(time.Millisecond),
		Created:     rec.created,
		SmoothRuns:  rec.smoothRuns,
		Quality:     rec.quality,
		Summary:     rec.summary,
	}
}

func (s *Server) recordOr404(id string) (*meshRecord, error) {
	rec := s.store.Get(id)
	if rec == nil {
		return nil, apiErrorf(http.StatusNotFound, "mesh %q not found", id)
	}
	return rec, nil
}

// --- simple endpoints ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"meshes":         s.store.Len(),
		"pool":           s.pool.Stats(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.metrics.vars.String())
}

func (s *Server) handleOrderings(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"orderings": lams.Orderings(),
		"default":   "RDR",
	})
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"domains":    lams.Domains(),
		"domains_3d": tetDomains,
	})
}

func (s *Server) handleSchedules(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"schedules": lams.Schedules(),
		"default":   lams.DefaultSchedule,
	})
}

func (s *Server) handlePartitioners(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"partitioners": lams.Partitioners(),
		"default":      lams.DefaultPartitioner,
	})
}

// --- mesh lifecycle ---

// generateRequest is the JSON body of POST /v1/meshes: generate one of the
// paper's named domains server-side (dim 2, the default), or the structured
// cube tetrahedral mesh (dim 3, domain "cube").
type generateRequest struct {
	Domain      string `json:"domain"`
	TargetVerts int    `json:"target_verts"`
	// Dim selects the mesh dimension: 0 or 2 for the paper's 2D domains,
	// 3 for the tetrahedral cube.
	Dim int `json:"dim"`
	// Jitter displaces the cube's interior vertices by up to jitter*h per
	// axis (dim 3 only; default 0.3, the value the test meshes use). A
	// pointer, like smoothRequest.Tol, so an explicit 0 — the regular grid —
	// is distinguishable from unset.
	Jitter *float64 `json:"jitter"`
}

// tetDomains lists the generatable 3D domains.
var tetDomains = []string{"cube"}

func (s *Server) handleCreateMesh(w http.ResponseWriter, r *http.Request) {
	tenant := tenantFrom(r.Context())
	if quota := s.cfg.TenantMaxMeshes; quota > 0 && s.store.CountTenant(tenant) >= quota {
		w.Header().Set("Retry-After", "1")
		s.metrics.tenantCounter(tenant, "throttled")
		writeError(w, apiErrorf(http.StatusTooManyRequests,
			"tenant %q at its resident-mesh quota (%d); delete one first", tenant, quota))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	ct := r.Header.Get("Content-Type")
	var (
		rec *meshRecord
		err error
	)
	switch {
	case strings.HasPrefix(ct, "application/json"):
		rec, err = s.generateMesh(r, tenant)
	case strings.HasPrefix(ct, "multipart/"):
		var m *lams.Mesh
		var name string
		if m, name, err = s.uploadMesh(r); err == nil {
			rec, err = s.addMesh(func() (*meshRecord, error) { return s.store.Add(m, name, tenant) })
		}
	default:
		err = apiErrorf(http.StatusUnsupportedMediaType,
			"Content-Type %q: want application/json (generate a domain) or multipart/form-data with node and ele parts (upload)", ct)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	s.metrics.uploads.Add(1)
	w.Header().Set("Location", "/v1/meshes/"+rec.id)
	writeJSON(w, http.StatusCreated, rec.info())
}

// addMesh maps a store-capacity failure to 507 Insufficient Storage.
func (s *Server) addMesh(add func() (*meshRecord, error)) (*meshRecord, error) {
	rec, err := add()
	if err != nil {
		return nil, apiErrorf(http.StatusInsufficientStorage, "%v", err)
	}
	return rec, nil
}

func (s *Server) generateMesh(r *http.Request, tenant string) (*meshRecord, error) {
	var req generateRequest
	if err := decodeJSON(r, &req, false); err != nil {
		return nil, err
	}
	if req.Dim != 0 && req.Dim != 2 && req.Dim != 3 {
		return nil, apiErrorf(http.StatusBadRequest, "dim %d: want 2 (triangles) or 3 (tetrahedra)", req.Dim)
	}
	if req.Domain == "" {
		return nil, apiErrorf(http.StatusBadRequest,
			"domain is required; known domains: %v (dim 2), %v (dim 3)", lams.Domains(), tetDomains)
	}
	if req.TargetVerts <= 0 {
		req.TargetVerts = 10_000
	}
	if req.TargetVerts > s.cfg.MaxMeshVerts {
		return nil, apiErrorf(http.StatusRequestEntityTooLarge,
			"target_verts %d exceeds the server limit %d", req.TargetVerts, s.cfg.MaxMeshVerts)
	}
	if req.Dim == 3 {
		if req.Domain != "cube" {
			return nil, apiErrorf(http.StatusBadRequest,
				"domain %q: dim 3 domains are %v", req.Domain, tetDomains)
		}
		jitter := 0.3
		if req.Jitter != nil {
			jitter = *req.Jitter
		}
		if jitter < 0 || jitter >= 0.5 {
			return nil, apiErrorf(http.StatusBadRequest, "jitter %g out of range [0, 0.5)", jitter)
		}
		m, err := lams.GenerateTetCubeVerts(req.TargetVerts, jitter)
		if err != nil {
			return nil, apiErrorf(http.StatusBadRequest, "generating tet mesh: %v", err)
		}
		return s.addMesh(func() (*meshRecord, error) { return s.store.AddTet(m, req.Domain, tenant) })
	}
	m, err := lams.GenerateMesh(req.Domain, req.TargetVerts)
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, "generating mesh: %v", err)
	}
	return s.addMesh(func() (*meshRecord, error) { return s.store.Add(m, req.Domain, tenant) })
}

// uploadMesh streams a Triangle-format mesh out of a multipart body. The
// parts must arrive as "node" then "ele" — the codec consumes the node
// stream before the ele stream, so no buffering is needed regardless of
// mesh size.
func (s *Server) uploadMesh(r *http.Request) (*lams.Mesh, string, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, "", apiErrorf(http.StatusBadRequest, "reading multipart body: %v", err)
	}
	nodePart, err := mr.NextPart()
	if err != nil {
		return nil, "", apiErrorf(http.StatusBadRequest, "multipart body has no parts: %v", err)
	}
	if nodePart.FormName() != "node" {
		return nil, "", apiErrorf(http.StatusBadRequest,
			"first multipart part is %q, want \"node\" (then \"ele\")", nodePart.FormName())
	}
	coords, err := mesh.ReadNode(nodePart, s.cfg.MaxMeshVerts)
	if err != nil {
		return nil, "", uploadError(err)
	}
	elePart, err := mr.NextPart()
	if err != nil {
		return nil, "", apiErrorf(http.StatusBadRequest, "multipart body is missing the \"ele\" part: %v", err)
	}
	if elePart.FormName() != "ele" {
		return nil, "", apiErrorf(http.StatusBadRequest,
			"second multipart part is %q, want \"ele\"", elePart.FormName())
	}
	// Euler's formula bounds a planar triangulation at < 2 triangles per
	// vertex; allow slack for unusual but legal inputs.
	tris, err := mesh.ReadEle(elePart, len(coords), 4*len(coords))
	if err != nil {
		return nil, "", uploadError(err)
	}
	m, err := mesh.New(coords, tris)
	if err != nil {
		return nil, "", uploadError(err)
	}
	return m, "upload", nil
}

// uploadError turns a codec parse error into a 400, unless the body-size
// limit tripped underneath it or the declared mesh exceeds the server's
// size limits (413).
func uploadError(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return err
	}
	if errors.Is(err, mesh.ErrMeshTooLarge) {
		return apiErrorf(http.StatusRequestEntityTooLarge, "%v", err)
	}
	return apiErrorf(http.StatusBadRequest, "invalid mesh upload: %v", err)
}

func (s *Server) handleListMeshes(w http.ResponseWriter, r *http.Request) {
	recs := s.store.List()
	infos := make([]meshInfo, len(recs))
	for i, rec := range recs {
		infos[i] = rec.info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"meshes": infos})
}

func (s *Server) handleGetMesh(w http.ResponseWriter, r *http.Request) {
	rec, err := s.recordOr404(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec.info())
}

func (s *Server) handleDeleteMesh(w http.ResponseWriter, r *http.Request) {
	rec, empty := s.store.Delete(r.PathValue("id"))
	if rec == nil {
		writeError(w, apiErrorf(http.StatusNotFound, "mesh %q not found", r.PathValue("id")))
		return
	}
	// Warm partitioned engines may hold a decomposition cached against this
	// mesh; drop those references so deleting the mesh actually frees it
	// (engines checked out right now are swept when they return to the pool).
	s.pool.EvictMesh(rec.liveMesh())
	if empty {
		// No meshes left: parked engine buffers are sized for meshes that no
		// longer exist, so release them.
		s.pool.Trim()
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleExportMesh(w http.ResponseWriter, r *http.Request) {
	rec, err := s.recordOr404(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	part := r.URL.Query().Get("part")
	if part == "" {
		part = "node"
	}
	if part != "node" && part != "ele" {
		writeError(w, apiErrorf(http.StatusBadRequest, "part %q: want \"node\" or \"ele\"", part))
		return
	}
	// Clone under the read lock and stream from the copy: a slow-reading
	// client must never pin the mesh lock (and with it every writer of this
	// mesh) for the duration of its download.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.%s", rec.id, part))
	if rec.dim == 3 {
		rec.mu.RLock()
		clone := rec.tet.Clone()
		rec.mu.RUnlock()
		if part == "node" {
			_ = clone.WriteNode(w)
		} else {
			_ = clone.WriteEle(w)
		}
		return
	}
	rec.mu.RLock()
	clone := rec.mesh.Clone()
	rec.mu.RUnlock()
	if part == "node" {
		_ = clone.WriteNode(w)
	} else {
		_ = clone.WriteEle(w)
	}
}

// --- pipeline endpoints ---

// reorderRequest is the JSON body of POST /v1/meshes/{id}/reorder.
type reorderRequest struct {
	Ordering string `json:"ordering"`
}

func (s *Server) handleReorderMesh(w http.ResponseWriter, r *http.Request) {
	rec, err := s.recordOr404(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req reorderRequest
	if err := decodeJSON(r, &req, false); err != nil {
		writeError(w, err)
		return
	}
	if req.Ordering == "" {
		writeError(w, apiErrorf(http.StatusBadRequest, "ordering is required; see GET /v1/orderings"))
		return
	}
	if _, err := lams.OrderingByName(req.Ordering); err != nil {
		writeError(w, apiErrorf(http.StatusBadRequest, "%v", err))
		return
	}

	// Compute the ordering on a clone, off the mesh lock, so the request
	// deadline stays enforceable (lams.Reorder itself takes no context) and
	// other requests for this mesh keep flowing during the computation. The
	// generation counter detects a concurrent mutation at commit time.
	rec.mu.RLock()
	var clone2 *lams.Mesh
	var clone3 *lams.TetMesh
	if rec.dim == 3 {
		clone3 = rec.tet.Clone()
	} else {
		clone2 = rec.mesh.Clone()
	}
	gen := rec.gen.Load()
	rec.mu.RUnlock()

	type reorderResult struct {
		mesh2     *lams.Mesh
		mesh3     *lams.TetMesh
		orderTime time.Duration
		err       error
	}
	ch := make(chan reorderResult, 1)
	go func() {
		if clone3 != nil {
			re, err := lams.ReorderTet(clone3, req.Ordering)
			if err != nil {
				ch <- reorderResult{err: err}
				return
			}
			ch <- reorderResult{mesh3: re.Mesh, orderTime: re.OrderTime}
			return
		}
		re, err := lams.Reorder(clone2, req.Ordering)
		if err != nil {
			ch <- reorderResult{err: err}
			return
		}
		ch <- reorderResult{mesh2: re.Mesh, orderTime: re.OrderTime}
	}()

	var res reorderResult
	select {
	case <-r.Context().Done():
		// The orphaned computation finishes on the clone and is discarded.
		writeError(w, r.Context().Err())
		return
	case res = <-ch:
		if res.err != nil {
			writeError(w, res.err)
			return
		}
	}

	rec.mu.Lock()
	if rec.gen.Load() != gen {
		rec.mu.Unlock()
		writeError(w, apiErrorf(http.StatusConflict,
			"mesh %q was modified while the ordering was being computed; retry", rec.id))
		return
	}
	oldMesh := rec.liveMesh()
	if res.mesh3 != nil {
		rec.tet = res.mesh3
	} else {
		rec.mesh = res.mesh2
	}
	rec.storeLive()
	rec.gen.Add(1)
	rec.metaMu.Lock()
	rec.ordering = req.Ordering
	rec.orderTime = res.orderTime
	// Quality is permutation-invariant up to float summation order;
	// recompute lazily rather than serve a subtly drifted cache.
	rec.qualityStale = true
	rec.metaMu.Unlock()
	rec.mu.Unlock()

	// The pre-reorder mesh object is gone; decompositions cached against it
	// in warm engines would only pin its memory (they could never be reused —
	// the cache keys on the mesh pointer).
	s.pool.EvictMesh(oldMesh)
	s.store.Touch()
	s.metrics.reorders.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":            rec.id,
		"ordering":      req.Ordering,
		"order_time_ms": float64(res.orderTime) / float64(time.Millisecond),
	})
}

// smoothRequest is the JSON body of POST /v1/meshes/{id}/smooth. The zero
// value (or an empty body) selects the library defaults: the plain kernel,
// one worker, quality-greedy traversal, the paper's convergence tolerance.
type smoothRequest struct {
	// Kernel is one of plain, smart, weighted, constrained.
	Kernel string `json:"kernel"`
	// MaxDisplacement parameterizes the constrained kernel (> 0).
	MaxDisplacement float64 `json:"max_displacement"`
	// Workers is the parallel worker count (default 1).
	Workers int `json:"workers"`
	// Schedule is the chunk schedule distributing the sweep across workers:
	// static (default), guided, or stealing. The ?schedule= query parameter
	// overrides it.
	Schedule string `json:"schedule"`
	// MaxIters caps the number of sweeps (default 100).
	MaxIters int `json:"max_iters"`
	// Tol overrides the convergence criterion; negative disables it.
	Tol *float64 `json:"tol"`
	// GoalQuality stops the run once global quality reaches it.
	GoalQuality float64 `json:"goal_quality"`
	// CheckEvery measures global quality every CheckEvery-th sweep instead
	// of after every sweep (default 1), amortizing the measurement pass for
	// long converging runs; the quality history records only the measured
	// iterations and the final sweep is always measured.
	CheckEvery int `json:"check_every"`
	// Metric is one of edge-ratio (default), min-angle, aspect-ratio.
	Metric string `json:"metric"`
	// StorageOrder sweeps in storage order instead of the quality-greedy
	// traversal.
	StorageOrder bool `json:"storage_order"`
	// GaussSeidel applies updates in place. The in-place sweep is serial at
	// any worker count; workers > 1 parallelizes the quality measurements.
	GaussSeidel bool `json:"gauss_seidel"`
	// Partitions > 1 decomposes the mesh and smooths with one engine per
	// partition, exchanging halo coordinates at every sweep barrier. Jacobi
	// updates keep the result bit-identical to the single-engine run at any
	// partition count. Partitioned runs reject the smart kernel and
	// gauss_seidel (both update in place).
	Partitions int `json:"partitions"`
	// Partitioner names the decomposition strategy for partitions > 1:
	// bfs (default) or bisect.
	Partitioner string `json:"partitioner"`
}

// smoothResponse reports a smoothing run and the pool state that served it.
type smoothResponse struct {
	ID             string    `json:"id"`
	Kernel         string    `json:"kernel"`
	Workers        int       `json:"workers"`
	Schedule       string    `json:"schedule"`
	CheckEvery     int       `json:"check_every"`
	Partitions     int       `json:"partitions,omitempty"`
	Partitioner    string    `json:"partitioner,omitempty"`
	Iterations     int       `json:"iterations"`
	InitialQuality float64   `json:"initial_quality"`
	FinalQuality   float64   `json:"final_quality"`
	Accesses       int64     `json:"accesses"`
	DurationMS     float64   `json:"duration_ms"`
	Pool           PoolStats `json:"pool"`
}

// kernelsFor resolves the request kernel through the library's shared
// registry, producing the 2D and 3D kernels in one step: one lookup path
// for both dimensions, so they accept the same vocabulary and reject bad
// requests with byte-identical 400 bodies by construction. met and tmet
// are the already-resolved request metrics, so the smart kernels judge
// moves with the same metric that drives convergence and the reported
// qualities.
func kernelsFor(req smoothRequest, met lams.Metric, tmet lams.TetMetric) (lams.Kernel, lams.TetKernel, string, error) {
	name := req.Kernel
	if name == "" {
		name = "plain"
	}
	if !slices.Contains(lams.KernelNames(), name) {
		return nil, nil, "", apiErrorf(http.StatusBadRequest,
			"unknown kernel %q: want %s", name, strings.Join(lams.KernelNames(), ", "))
	}
	if name == "constrained" && req.MaxDisplacement <= 0 {
		return nil, nil, "", apiErrorf(http.StatusBadRequest,
			"constrained kernel needs max_displacement > 0, got %g", req.MaxDisplacement)
	}
	k2, k3, err := lams.KernelsByName(name, met, tmet, req.MaxDisplacement)
	if err != nil {
		return nil, nil, "", apiErrorf(http.StatusBadRequest, "%v", err)
	}
	return k2, k3, name, nil
}

// scheduleFor resolves the request's chunk schedule ("" means the library
// default) against the registry. The engine would reject an unknown name
// too, but only after the request holds the mesh lock and a pool slot —
// validating here keeps bad names a cheap 400 that never touches either.
func scheduleFor(name string) (string, error) {
	if name == "" {
		return lams.DefaultSchedule, nil
	}
	if slices.Contains(lams.Schedules(), name) {
		return name, nil
	}
	return "", apiErrorf(http.StatusBadRequest,
		"unknown schedule %q: registered schedules are %v", name, lams.Schedules())
}

// partitionerFor resolves the request's decomposition strategy ("" means
// the library default) against the registry, keeping unknown names a cheap
// 400 like scheduleFor does.
func partitionerFor(name string) (string, error) {
	if name == "" {
		return lams.DefaultPartitioner, nil
	}
	if slices.Contains(lams.Partitioners(), name) {
		return name, nil
	}
	return "", apiErrorf(http.StatusBadRequest,
		"unknown partitioner %q: registered partitioners are %v", name, lams.Partitioners())
}

func metricFor(name string) (lams.Metric, error) {
	switch name {
	case "", "edge-ratio":
		return nil, nil // library default
	case "min-angle":
		return lams.MinAngle{}, nil
	case "aspect-ratio":
		return lams.AspectRatio{}, nil
	}
	return nil, apiErrorf(http.StatusBadRequest,
		"unknown metric %q: want edge-ratio, min-angle, or aspect-ratio", name)
}

// tetMetricFor resolves the request metric for a dim=3 mesh ("" means the
// library default, mean-ratio).
func tetMetricFor(name string) (lams.TetMetric, error) {
	switch name {
	case "", "mean-ratio":
		return nil, nil // library default
	case "edge-ratio":
		return lams.TetEdgeRatio{}, nil
	}
	return nil, apiErrorf(http.StatusBadRequest,
		"unknown tet metric %q: want mean-ratio or edge-ratio", name)
}

func (s *Server) handleSmoothMesh(w http.ResponseWriter, r *http.Request) {
	rec, err := s.recordOr404(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req smoothRequest
	if err := decodeJSON(r, &req, true); err != nil {
		writeError(w, err)
		return
	}
	if q := r.URL.Query().Get("schedule"); q != "" {
		req.Schedule = q
	}
	async := false
	if q := r.URL.Query().Get("async"); q != "" {
		async, err = strconv.ParseBool(q)
		if err != nil {
			writeError(w, apiErrorf(http.StatusBadRequest, "invalid async %q: want a boolean like 1 or true", q))
			return
		}
	}
	plan, err := s.planSmooth(rec, req)
	if err != nil {
		writeError(w, err)
		return
	}
	if async {
		s.submitSmoothJob(w, r, rec, plan, req)
		return
	}
	resp, err := s.executeSmooth(r.Context(), rec, plan, nil)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// submitSmoothJob is the ?async=1 leg of the smooth endpoint: admit the job
// against the tenant's in-flight cap, register it, journal the acceptance —
// the 202 is a durability promise on durable servers, so the accept record
// must be on disk before it goes out — then detach the run onto a
// background goroutine under its own ?timeout-derived budget, and answer
// 202 with the job's poll URL.
func (s *Server) submitSmoothJob(w http.ResponseWriter, r *http.Request, rec *meshRecord, plan smoothPlan, req smoothRequest) {
	tenant := tenantFrom(r.Context())
	// Re-parse rather than inherit the request deadline: the job's budget
	// starts when the run does, not when the submission arrived.
	budget, err := s.parseTimeout(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if !s.quotas.AcquireJob(tenant) {
		w.Header().Set("Retry-After", "1")
		s.metrics.tenantCounter(tenant, "throttled")
		writeError(w, apiErrorf(http.StatusTooManyRequests,
			"tenant %q at its in-flight async job quota (%d); poll or cancel a job first", tenant, s.cfg.TenantMaxJobs))
		return
	}
	job, err := s.jobs.add(tenant, rec.id, plan.maxIters, budget)
	if err != nil {
		s.quotas.ReleaseJob(tenant)
		if errorStatus(err) == http.StatusTooManyRequests {
			// A full job store clears as running jobs finish or retained
			// results expire; tell well-behaved clients when to come back.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, err)
		return
	}
	if err := s.journal.append(journalRecord{
		Op:        opAccept,
		Job:       job.id,
		Seq:       job.seq,
		Tenant:    tenant,
		MeshID:    rec.id,
		MaxIters:  plan.maxIters,
		TimeoutNS: int64(budget),
		Created:   job.created,
		Request:   &req,
	}); err != nil {
		// No durable record, no 202: un-register the job and report the
		// outage rather than acknowledge work a crash could silently lose.
		s.jobs.abort(job.id)
		s.quotas.ReleaseJob(tenant)
		writeError(w, apiErrorf(http.StatusServiceUnavailable, "recording job: %v", err))
		return
	}
	s.metrics.jobsSubmitted.Add(1)
	s.metrics.tenantCounter(tenant, "jobs_submitted")
	s.startJob(job, rec, plan)
	w.Header().Set("Location", "/v1/jobs/"+job.id)
	writeJSON(w, http.StatusAccepted, job.info())
}

// runSmooth plans and executes a smooth request in one step — the
// synchronous path in a single call, for direct (non-HTTP) use.
func (s *Server) runSmooth(ctx context.Context, rec *meshRecord, req smoothRequest) (smoothResponse, error) {
	plan, err := s.planSmooth(rec, req)
	if err != nil {
		return smoothResponse{}, err
	}
	return s.executeSmooth(ctx, rec, plan, nil)
}

// smoothPlan is a validated smooth request, ready to execute: the resolved
// engine-pool key fields, the option list for the run, and the bookkeeping
// the response and the async progress view need. Splitting planning from
// execution keeps validation errors a cheap 400 on the submission path and
// lets the async path carry the plan across the HTTP/goroutine boundary.
type smoothPlan struct {
	kernName      string
	schedule      string
	partitions    int
	partitioner   string
	workers       int
	checkEvery    int
	maxIters      int // effective sweep cap (the library default when the request left it 0)
	defaultMetric bool
	opts          []lams.SmoothOption
}

// planSmooth validates the request against the server limits and the mesh's
// dimension and resolves it into a smoothPlan. It takes no locks.
func (s *Server) planSmooth(rec *meshRecord, req smoothRequest) (smoothPlan, error) {
	// Resolve the dimension-specific rules first. Only the metric vocabulary
	// actually differs per dimension; the kernels resolve through one shared
	// registry lookup, and the resulting options list, kernel name, and
	// whether the default metric is in play feed the shared path below.
	var (
		met  lams.Metric
		tmet lams.TetMetric
		err  error
	)
	if rec.dim == 3 {
		tmet, err = tetMetricFor(req.Metric)
	} else {
		met, err = metricFor(req.Metric)
	}
	if err != nil {
		return smoothPlan{}, err
	}
	defaultMetric := met == nil && tmet == nil
	kern2, kern3, kernName, err := kernelsFor(req, met, tmet)
	if err != nil {
		return smoothPlan{}, err
	}
	var dimOpts []lams.SmoothOption
	if rec.dim == 3 {
		dimOpts = append(dimOpts, lams.WithTetKernel(kern3))
		if tmet != nil {
			dimOpts = append(dimOpts, lams.WithTetMetric(tmet))
		}
	} else {
		dimOpts = append(dimOpts, lams.WithKernel(kern2))
		if met != nil {
			dimOpts = append(dimOpts, lams.WithMetric(met))
		}
	}
	workers := req.Workers
	if workers == 0 {
		workers = 1
	}
	if workers < 1 || workers > s.cfg.MaxWorkers {
		return smoothPlan{}, apiErrorf(http.StatusBadRequest,
			"workers %d out of range [1,%d]", workers, s.cfg.MaxWorkers)
	}
	if req.MaxIters < 0 {
		return smoothPlan{}, apiErrorf(http.StatusBadRequest, "max_iters %d is negative", req.MaxIters)
	}
	checkEvery := req.CheckEvery
	if checkEvery == 0 {
		checkEvery = 1
	}
	if checkEvery < 1 {
		return smoothPlan{}, apiErrorf(http.StatusBadRequest,
			"check_every %d: want >= 1 (measure global quality every k-th sweep)", req.CheckEvery)
	}
	schedule, err := scheduleFor(req.Schedule)
	if err != nil {
		return smoothPlan{}, err
	}
	partitions := req.Partitions
	if partitions == 0 {
		partitions = 1
	}
	if partitions < 1 {
		return smoothPlan{}, apiErrorf(http.StatusBadRequest,
			"partitions %d: want >= 1 (smooth with one engine per partition)", req.Partitions)
	}
	partitioner := ""
	if partitions > 1 {
		if req.GaussSeidel {
			return smoothPlan{}, apiErrorf(http.StatusBadRequest,
				"partitions %d: partitioned runs need Jacobi updates; drop gauss_seidel", partitions)
		}
		if kernName == "smart" {
			return smoothPlan{}, apiErrorf(http.StatusBadRequest,
				"partitions %d: the smart kernel updates in place; partitioned runs need a Jacobi kernel", partitions)
		}
		if partitioner, err = partitionerFor(req.Partitioner); err != nil {
			return smoothPlan{}, err
		}
	} else if req.Partitioner != "" {
		// Validate even when unused so typos do not pass silently.
		if _, err := partitionerFor(req.Partitioner); err != nil {
			return smoothPlan{}, err
		}
	}

	maxIters := req.MaxIters
	if maxIters == 0 {
		maxIters = lams.DefaultMaxIterations
	}
	opts := make([]lams.SmoothOption, 0, 10)
	opts = append(opts, dimOpts...)
	opts = append(opts, lams.WithWorkers(workers), lams.WithSchedule(schedule))
	if req.MaxIters > 0 {
		opts = append(opts, lams.WithMaxIterations(req.MaxIters))
	}
	if req.Tol != nil {
		opts = append(opts, lams.WithTolerance(*req.Tol))
	}
	if req.GoalQuality > 0 {
		opts = append(opts, lams.WithGoalQuality(req.GoalQuality))
	}
	if req.StorageOrder {
		opts = append(opts, lams.WithStorageOrderTraversal())
	}
	if req.GaussSeidel {
		opts = append(opts, lams.WithGaussSeidel())
	}
	if checkEvery > 1 {
		opts = append(opts, lams.WithCheckEvery(checkEvery))
	}
	if partitions > 1 {
		opts = append(opts, lams.WithPartitions(partitions), lams.WithPartitioner(partitioner))
	}
	return smoothPlan{
		kernName:      kernName,
		schedule:      schedule,
		partitions:    partitions,
		partitioner:   partitioner,
		workers:       workers,
		checkEvery:    checkEvery,
		maxIters:      maxIters,
		defaultMetric: defaultMetric,
		opts:          opts,
	}, nil
}

// executeSmooth is the pooled hot path shared by the synchronous endpoint
// and the async job runner: check a warm engine out of the pool (queueing
// under ctx's deadline), run the sweep engine on the stored mesh under its
// write lock, and return the engine. In steady state this performs no
// per-request engine allocation — the engine's visit/next/quality scratch
// buffers were grown by earlier requests; see
// TestServerPooledSmoothSteadyState. progress, when non-nil, is threaded to
// the engine's convergence loop (the async path's live job view). extra
// options are appended after the plan's — the async job runner passes its
// checkpoint emission and resume options through here.
func (s *Server) executeSmooth(ctx context.Context, rec *meshRecord, plan smoothPlan, progress func(iteration int, quality float64), extra ...lams.SmoothOption) (smoothResponse, error) {
	// Serialize on the mesh BEFORE taking a pool slot: requests for one hot
	// mesh queue on its lock without pinning global smooth capacity, so they
	// cannot starve smooths of other meshes. The mutex wait itself is not
	// context-aware, but it is bounded by the lock holder's own deadline and
	// the request's deadline is re-checked the moment the lock arrives.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return smoothResponse{}, err
	}
	if nverts := rec.numVerts(); plan.partitions > nverts {
		return smoothResponse{}, apiErrorf(http.StatusBadRequest,
			"partitions %d out of range [1,%d] for this mesh", plan.partitions, nverts)
	}
	key := engineKey{Dim: rec.dim, Kernel: plan.kernName, Workers: plan.workers, Schedule: plan.schedule,
		Partitions: plan.partitions, Partitioner: plan.partitioner}
	eng, err := s.pool.Acquire(ctx, key)
	if err != nil {
		// The deadline or client disconnect fired while queued.
		return smoothResponse{}, err
	}
	defer s.pool.Release(key, eng)

	// Full-slice append: never grow the plan's backing array in place (a
	// canceled-and-resubmitted plan must not see stale appended options).
	opts := plan.opts[:len(plan.opts):len(plan.opts)]
	if s.cfg.Faults != nil {
		// Chaos mode reaches into the engine too: sweep and halo-exchange
		// fault points fire inside the run.
		opts = append(opts, lams.WithFaultInjection(s.cfg.Faults))
	}
	if progress != nil {
		opts = append(opts, lams.WithProgress(progress))
	}
	opts = append(opts, extra...)

	start := time.Now()
	var res lams.SmoothResult
	if rec.dim == 3 {
		res, err = eng.SmoothTet(ctx, rec.tet, opts...)
	} else {
		res, err = eng.Smooth(ctx, rec.mesh, opts...)
	}
	dur := time.Since(start)
	if res.Iterations > 0 {
		rec.gen.Add(1)
		// Coordinates moved: the resident state drifted from the last
		// snapshot, whatever the outcome below.
		s.store.Touch()
	}
	rec.metaMu.Lock()
	switch {
	case err != nil:
		// A deadline-cut run still committed its completed sweeps.
		if res.Iterations > 0 {
			rec.qualityStale = true
		}
	case plan.defaultMetric:
		// The engine's final quality IS the default-metric global quality:
		// refresh the cache for free on the common path.
		rec.smoothRuns++
		rec.quality = res.FinalQuality
		rec.qualityStale = false
	default:
		rec.smoothRuns++
		rec.qualityStale = true
	}
	rec.metaMu.Unlock()
	if err != nil {
		// On deadline expiry the mesh holds the last completed sweep; the
		// client sees 504 and may retry with a longer budget.
		return smoothResponse{}, err
	}

	s.metrics.smoothRuns.Add(1)
	s.metrics.smoothBySchedule.Add(plan.schedule, 1)
	s.metrics.smoothIterations.Add(int64(res.Iterations))
	s.metrics.smoothAccesses.Add(res.Accesses)
	resp := smoothResponse{
		ID:             rec.id,
		Kernel:         plan.kernName,
		Workers:        plan.workers,
		Schedule:       plan.schedule,
		CheckEvery:     plan.checkEvery,
		Iterations:     res.Iterations,
		InitialQuality: res.InitialQuality,
		FinalQuality:   res.FinalQuality,
		Accesses:       res.Accesses,
		DurationMS:     float64(dur) / float64(time.Millisecond),
		Pool:           s.pool.Stats(),
	}
	if plan.partitions > 1 {
		s.metrics.smoothPartitioned.Add(1)
		resp.Partitions, resp.Partitioner = plan.partitions, plan.partitioner
	}
	return resp, nil
}

// analyzeResponse is the JSON shape of GET /v1/meshes/{id}/analyze.
type analyzeResponse struct {
	ID                string    `json:"id"`
	Ordering          string    `json:"ordering"`
	Iterations        int       `json:"iterations"`
	Accesses          int64     `json:"accesses"`
	MeanReuseDistance float64   `json:"mean_reuse_distance"`
	ReuseQ50          int64     `json:"reuse_q50"`
	ReuseQ75          int64     `json:"reuse_q75"`
	ReuseQ90          int64     `json:"reuse_q90"`
	MaxReuseDistance  int64     `json:"max_reuse_distance"`
	MissRates         []float64 `json:"miss_rates"`
	PenaltyCycles     float64   `json:"penalty_cycles"`
	DurationMS        float64   `json:"duration_ms"`
}

func (s *Server) handleAnalyzeMesh(w http.ResponseWriter, r *http.Request) {
	rec, err := s.recordOr404(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	iters, err := queryInt(r, "iters", 1, 1, 16)
	if err != nil {
		writeError(w, err)
		return
	}
	workers, err := queryInt(r, "workers", 1, 1, s.cfg.MaxWorkers)
	if err != nil {
		writeError(w, err)
		return
	}

	// Analysis traces a clone, so only the copy needs the read lock; the
	// (expensive) trace and simulation run without blocking other requests
	// for this mesh.
	rec.metaMu.Lock()
	ordering := rec.ordering
	rec.metaMu.Unlock()

	start := time.Now()
	var rep *lams.LocalityReport
	var err2 error
	if rec.dim == 3 {
		rec.mu.RLock()
		clone := rec.tet.Clone()
		rec.mu.RUnlock()
		rep, err2 = lams.AnalyzeTetLocality(r.Context(), clone,
			lams.WithAnalysisIterations(iters),
			lams.WithAnalysisWorkers(workers))
	} else {
		rec.mu.RLock()
		clone := rec.mesh.Clone()
		rec.mu.RUnlock()
		rep, err2 = lams.AnalyzeLocality(r.Context(), clone,
			lams.WithAnalysisIterations(iters),
			lams.WithAnalysisWorkers(workers))
	}
	if err2 != nil {
		writeError(w, err2)
		return
	}
	s.metrics.analyses.Add(1)
	writeJSON(w, http.StatusOK, analyzeResponse{
		ID:                rec.id,
		Ordering:          ordering,
		Iterations:        rep.Iterations,
		Accesses:          rep.Accesses,
		MeanReuseDistance: rep.MeanReuseDistance,
		ReuseQ50:          rep.ReuseQ50,
		ReuseQ75:          rep.ReuseQ75,
		ReuseQ90:          rep.ReuseQ90,
		MaxReuseDistance:  rep.MaxReuseDistance,
		MissRates:         rep.MissRates,
		PenaltyCycles:     rep.PenaltyCycles,
		DurationMS:        float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func queryInt(r *http.Request, name string, def, lo, hi int) (int, error) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return def, nil
	}
	v, err := strconv.Atoi(q)
	if err != nil {
		return 0, apiErrorf(http.StatusBadRequest, "invalid %s %q: %v", name, q, err)
	}
	if v < lo || v > hi {
		return 0, apiErrorf(http.StatusBadRequest, "%s %d out of range [%d,%d]", name, v, lo, hi)
	}
	return v, nil
}
