package lamsd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"lams/internal/faultinject"
	"lams/internal/mesh"
	"lams/pkg/lams"
)

// The durable mesh store is a single snapshot file in -data-dir holding
// every resident mesh (coordinates and elements through the streaming
// Triangle/TetGen codecs) plus its service metadata (id, tenant, ordering,
// run counts). Snapshots are written to a temp file and renamed into place,
// so a crash mid-snapshot leaves the previous complete snapshot intact —
// on restart the loader sees either the old file or the new one, never a
// torn mix. The file layout is line-oriented headers with length-prefixed
// codec payloads:
//
//	lamsd-snapshot v1\n
//	{manifest JSON}\n
//	for each mesh:
//	  {meta JSON incl. node_bytes, ele_bytes}\n
//	  <node_bytes bytes of .node payload><ele_bytes bytes of .ele payload>
const (
	snapshotName  = "meshes.snap"
	snapshotTmp   = "meshes.snap.tmp"
	snapshotMagic = "lamsd-snapshot v1"
)

// maxSnapshotPayload caps a single mesh's node or ele section; a corrupt
// length prefix must not provoke an arbitrary allocation.
const maxSnapshotPayload = 1 << 31

// maxRestoreVerts is the codec vertex cap used on restore. Deliberately
// larger than any runtime -max-verts: shrinking the limit across a restart
// must not drop meshes that were legally uploaded under the old one.
const maxRestoreVerts = 1 << 30

type snapManifest struct {
	Saved   time.Time `json:"saved"`
	Count   int       `json:"count"`
	NextSeq uint64    `json:"next_seq"`
}

type snapMeta struct {
	ID          string    `json:"id"`
	Seq         uint64    `json:"seq"`
	Name        string    `json:"name"`
	Tenant      string    `json:"tenant"`
	Dim         int       `json:"dim"`
	Ordering    string    `json:"ordering"`
	OrderTimeNS int64     `json:"order_time_ns"`
	Created     time.Time `json:"created"`
	SmoothRuns  int64     `json:"smooth_runs"`
	NodeBytes   int64     `json:"node_bytes"`
	EleBytes    int64     `json:"ele_bytes"`
}

// Snapshot writes the resident meshes to the data directory, atomically
// (temp file + rename). It is safe to call concurrently with request
// traffic: each mesh is cloned under its read lock, so a long snapshot
// never blocks smooths beyond the per-mesh clone.
func (s *Server) Snapshot() error {
	if s.cfg.DataDir == "" {
		return fmt.Errorf("lamsd: no data directory configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	// Capture the mutation counter before reading the records: anything
	// that mutates after this point dirties the NEXT snapshot.
	muts := s.store.Mutations()
	if err := s.writeSnapshot(); err != nil {
		s.metrics.snapshotErrs.Add(1)
		return err
	}
	s.lastSnap.Store(muts)
	s.metrics.snapshots.Add(1)
	return nil
}

// snapshotIfDirty snapshots only when the store mutated since the last
// successful snapshot; the periodic loop and graceful shutdown use it so
// an idle server stops rewriting identical files.
func (s *Server) snapshotIfDirty() error {
	if s.cfg.DataDir == "" || s.store.Mutations() == s.lastSnap.Load() {
		return nil
	}
	return s.Snapshot()
}

func (s *Server) writeSnapshot() error {
	// Chaos point: a failed snapshot must leave the previous complete
	// snapshot intact and surface only as a snapshot_errors tick.
	if err := s.cfg.Faults.Fire(faultinject.PointSnapshotWrite); err != nil {
		return err
	}
	recs := s.store.List()
	tmp := filepath.Join(s.cfg.DataDir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lamsd: snapshot: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	defer f.Close()

	bw := bufio.NewWriterSize(f, 1<<20)
	fmt.Fprintf(bw, "%s\n", snapshotMagic)
	manifest := snapManifest{Saved: time.Now().UTC(), Count: len(recs), NextSeq: s.store.Seq()}
	if err := writeJSONLine(bw, manifest); err != nil {
		return err
	}
	var nodeBuf, eleBuf bytes.Buffer
	for _, rec := range recs {
		if err := writeSnapshotRecord(bw, rec, &nodeBuf, &eleBuf); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("lamsd: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("lamsd: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lamsd: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.cfg.DataDir, snapshotName)); err != nil {
		return fmt.Errorf("lamsd: snapshot: %w", err)
	}
	// Persist the rename itself (best effort: not every filesystem
	// supports directory fsync).
	if d, err := os.Open(s.cfg.DataDir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

func writeSnapshotRecord(bw *bufio.Writer, rec *meshRecord, nodeBuf, eleBuf *bytes.Buffer) error {
	// Clone under the read lock, serialize off it: a mesh mid-download or
	// mid-listing stays responsive while its codec payload is produced.
	rec.mu.RLock()
	var clone2 *lams.Mesh
	var clone3 *lams.TetMesh
	if rec.dim == 3 {
		clone3 = rec.tet.Clone()
	} else {
		clone2 = rec.mesh.Clone()
	}
	rec.mu.RUnlock()

	nodeBuf.Reset()
	eleBuf.Reset()
	var err error
	if clone3 != nil {
		err = clone3.WriteNodeEle(nodeBuf, eleBuf)
	} else {
		err = clone2.WriteNodeEle(nodeBuf, eleBuf)
	}
	if err != nil {
		return fmt.Errorf("lamsd: snapshot mesh %s: %w", rec.id, err)
	}

	rec.metaMu.Lock()
	meta := snapMeta{
		ID:          rec.id,
		Seq:         rec.seq,
		Name:        rec.name,
		Tenant:      rec.tenant,
		Dim:         rec.dim,
		Ordering:    rec.ordering,
		OrderTimeNS: int64(rec.orderTime),
		Created:     rec.created,
		SmoothRuns:  rec.smoothRuns,
		NodeBytes:   int64(nodeBuf.Len()),
		EleBytes:    int64(eleBuf.Len()),
	}
	rec.metaMu.Unlock()

	if err := writeJSONLine(bw, meta); err != nil {
		return err
	}
	if _, err := bw.Write(nodeBuf.Bytes()); err != nil {
		return fmt.Errorf("lamsd: snapshot: %w", err)
	}
	if _, err := bw.Write(eleBuf.Bytes()); err != nil {
		return fmt.Errorf("lamsd: snapshot: %w", err)
	}
	return nil
}

func writeJSONLine(bw *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("lamsd: snapshot: %w", err)
	}
	b = append(b, '\n')
	if _, err := bw.Write(b); err != nil {
		return fmt.Errorf("lamsd: snapshot: %w", err)
	}
	return nil
}

// loadSnapshot restores the mesh store from the data directory's snapshot
// file, if one exists. Called once from Open, before the server accepts
// traffic.
func (s *Server) loadSnapshot() error {
	path := filepath.Join(s.cfg.DataDir, snapshotName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil // fresh data dir
	}
	if err != nil {
		return err
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<20)
	magic, err := readLine(br)
	if err != nil {
		return fmt.Errorf("reading header: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("unrecognized snapshot header %q", magic)
	}
	var manifest snapManifest
	if err := readJSONLine(br, &manifest); err != nil {
		return fmt.Errorf("reading manifest: %w", err)
	}
	for i := 0; i < manifest.Count; i++ {
		rec, err := readSnapshotRecord(br)
		if err != nil {
			return fmt.Errorf("mesh %d/%d: %w", i+1, manifest.Count, err)
		}
		if err := s.store.restore(rec); err != nil {
			return err
		}
		s.metrics.restored.Add(1)
	}
	// nextSeq advances past every restored record inside restore; the
	// manifest value additionally covers ids deleted after being assigned.
	if manifest.NextSeq > s.store.Seq() {
		s.store.mu.Lock()
		s.store.nextSeq = manifest.NextSeq
		s.store.mu.Unlock()
	}
	return nil
}

func readSnapshotRecord(br *bufio.Reader) (*meshRecord, error) {
	var meta snapMeta
	if err := readJSONLine(br, &meta); err != nil {
		return nil, err
	}
	if meta.Dim != 2 && meta.Dim != 3 {
		return nil, fmt.Errorf("mesh %s: dim %d", meta.ID, meta.Dim)
	}
	if meta.NodeBytes < 0 || meta.NodeBytes > maxSnapshotPayload ||
		meta.EleBytes < 0 || meta.EleBytes > maxSnapshotPayload {
		return nil, fmt.Errorf("mesh %s: implausible payload sizes (%d, %d)", meta.ID, meta.NodeBytes, meta.EleBytes)
	}
	node := make([]byte, meta.NodeBytes)
	if _, err := io.ReadFull(br, node); err != nil {
		return nil, fmt.Errorf("mesh %s: truncated node payload: %w", meta.ID, err)
	}
	ele := make([]byte, meta.EleBytes)
	if _, err := io.ReadFull(br, ele); err != nil {
		return nil, fmt.Errorf("mesh %s: truncated ele payload: %w", meta.ID, err)
	}

	rec := &meshRecord{
		id:         meta.ID,
		seq:        meta.Seq,
		created:    meta.Created,
		name:       meta.Name,
		tenant:     meta.Tenant,
		dim:        meta.Dim,
		ordering:   meta.Ordering,
		orderTime:  time.Duration(meta.OrderTimeNS),
		smoothRuns: meta.SmoothRuns,
	}
	if rec.tenant == "" {
		rec.tenant = DefaultTenant
	}
	if meta.Dim == 3 {
		coords, err := mesh.ReadNode3(bytes.NewReader(node), maxRestoreVerts)
		if err != nil {
			return nil, fmt.Errorf("mesh %s: %w", meta.ID, err)
		}
		tets, err := mesh.ReadTetEle(bytes.NewReader(ele), len(coords), 8*len(coords))
		if err != nil {
			return nil, fmt.Errorf("mesh %s: %w", meta.ID, err)
		}
		m, err := mesh.NewTet(coords, tets)
		if err != nil {
			return nil, fmt.Errorf("mesh %s: %w", meta.ID, err)
		}
		rec.tet = m
		rec.summary = m.Summary()
		return rec, nil
	}
	coords, err := mesh.ReadNode(bytes.NewReader(node), maxRestoreVerts)
	if err != nil {
		return nil, fmt.Errorf("mesh %s: %w", meta.ID, err)
	}
	tris, err := mesh.ReadEle(bytes.NewReader(ele), len(coords), 4*len(coords))
	if err != nil {
		return nil, fmt.Errorf("mesh %s: %w", meta.ID, err)
	}
	m, err := mesh.New(coords, tris)
	if err != nil {
		return nil, fmt.Errorf("mesh %s: %w", meta.ID, err)
	}
	rec.mesh = m
	rec.summary = m.Summary()
	return rec, nil
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return line[:len(line)-1], nil
}

func readJSONLine(br *bufio.Reader, dst any) error {
	line, err := readLine(br)
	if err != nil {
		return err
	}
	return json.Unmarshal([]byte(line), dst)
}

// startSnapshotLoop begins the periodic snapshot timer; stopped by Close.
func (s *Server) startSnapshotLoop() {
	s.stopSnap = make(chan struct{})
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		t := time.NewTicker(s.cfg.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// Failures are counted (snapshot_errors) and retried on
				// the next tick; the previous complete snapshot stays in
				// place either way.
				_ = s.snapshotIfDirty()
			case <-s.stopSnap:
				return
			}
		}
	}()
}
