package lamsd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lams/internal/faultinject"
	"lams/pkg/lams"
)

// jobState is the lifecycle of an async smooth job.
type jobState string

const (
	jobQueued   jobState = "queued"
	jobRunning  jobState = "running"
	jobDone     jobState = "done"
	jobFailed   jobState = "failed"
	jobCanceled jobState = "canceled"
)

// terminal reports whether the state is final (the TTL sweep only collects
// terminal jobs).
func (st jobState) terminal() bool {
	return st == jobDone || st == jobFailed || st == jobCanceled
}

// smoothJob is one asynchronous smooth: submitted with ?async=1, executed
// by a background goroutine through the same pooled executeSmooth path the
// synchronous endpoint uses, polled via GET /v1/jobs/{id}, and canceled via
// DELETE (which fires the job context's cancel — the same plumbing that
// maps request deadlines onto the sweep engine).
type smoothJob struct {
	id      string
	seq     uint64
	tenant  string
	meshID  string
	created time.Time
	// maxIters is the run's effective iteration cap, the denominator of
	// the progress/ETA estimate.
	maxIters int
	timeout  time.Duration
	cancel   context.CancelFunc

	// Live progress, written by the engine's Progress callback from the
	// converge loop and read lock-free by pollers: the latest measured
	// iteration and the quality it measured.
	progIter atomic.Int64
	progQual atomic.Uint64 // math.Float64bits

	mu        sync.Mutex
	state     jobState
	started   time.Time
	finished  time.Time
	result    *smoothResponse
	errMsg    string
	errStatus int
	// attempts counts execution attempts so far (0 until the first run
	// starts); transient failures bump it and retry with backoff. Restored
	// jobs carry the count accumulated before the restart.
	attempts int

	// ckpt is the engine's latest emitted checkpoint: what a retry (or,
	// through its on-disk twin job-<id>.ckpt, a post-restart replay) resumes
	// from instead of re-running completed sweeps. Guarded by its own mutex
	// because the engine emits from inside the sweep loop while pollers hold
	// mu.
	ckptMu sync.Mutex
	ckpt   *lams.Checkpoint
}

// jobInfo is the JSON shape of a job in every jobs endpoint.
type jobInfo struct {
	ID      string    `json:"id"`
	MeshID  string    `json:"mesh_id"`
	Tenant  string    `json:"tenant"`
	State   jobState  `json:"state"`
	Created time.Time `json:"created"`
	// Iterations and LatestQuality are the engine's live convergence
	// progress: the last measured sweep and the global quality it measured
	// (0 iterations until the initial measurement lands).
	Iterations    int     `json:"iterations"`
	LatestQuality float64 `json:"latest_quality"`
	MaxIters      int     `json:"max_iters"`
	// EtaMS linearly extrapolates the remaining time from the per-sweep
	// pace so far, against the iteration cap — an upper bound, since the
	// convergence criterion usually stops the run earlier. Only present on
	// running jobs that have completed at least one measured sweep.
	EtaMS      *float64 `json:"eta_ms,omitempty"`
	DurationMS float64  `json:"duration_ms"`
	// Attempts is how many execution attempts the job has made; > 1 means
	// transient failures were retried (see jobs_retried in /metrics).
	Attempts  int             `json:"attempts,omitempty"`
	Result    *smoothResponse `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	ErrorCode int             `json:"error_code,omitempty"`
}

func (j *smoothJob) info() jobInfo {
	iter := int(j.progIter.Load())
	qual := math.Float64frombits(j.progQual.Load())
	j.mu.Lock()
	defer j.mu.Unlock()
	info := jobInfo{
		ID:            j.id,
		MeshID:        j.meshID,
		Tenant:        j.tenant,
		State:         j.state,
		Created:       j.created,
		Iterations:    iter,
		LatestQuality: qual,
		MaxIters:      j.maxIters,
		Attempts:      j.attempts,
		Result:        j.result,
		Error:         j.errMsg,
		ErrorCode:     j.errStatus,
	}
	switch {
	case j.state.terminal():
		info.DurationMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	case j.state == jobRunning:
		elapsed := time.Since(j.started)
		info.DurationMS = float64(elapsed) / float64(time.Millisecond)
		if iter > 0 && iter < j.maxIters {
			eta := float64(elapsed) / float64(iter) * float64(j.maxIters-iter) / float64(time.Millisecond)
			info.EtaMS = &eta
		}
	}
	return info
}

// jobStore is the in-memory job registry. Terminal jobs are retained for
// ttl (so clients can fetch results after completion) and swept lazily on
// every access — no background goroutine needed — with maxJobs bounding
// total residency against pollers that never collect their results.
type jobStore struct {
	ttl     time.Duration
	maxJobs int

	mu      sync.Mutex
	jobs    map[string]*smoothJob
	nextSeq uint64
	closed  bool

	wg sync.WaitGroup // running job goroutines; Close waits for them
}

func newJobStore(ttl time.Duration, maxJobs int) *jobStore {
	return &jobStore{ttl: ttl, maxJobs: maxJobs, jobs: make(map[string]*smoothJob)}
}

// add registers a new queued job. It fails when the server is shutting
// down or when even evicting terminal jobs cannot make room.
func (js *jobStore) add(tenant, meshID string, maxIters int, timeout time.Duration) (*smoothJob, error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.closed {
		return nil, apiErrorf(http.StatusServiceUnavailable, "server is shutting down")
	}
	js.sweepLocked(time.Now())
	if len(js.jobs) >= js.maxJobs {
		// Retained results yield to new work: evict the oldest terminal
		// jobs to make room, and reject only when the cap is filled by
		// jobs that are actually running.
		js.evictTerminalLocked(len(js.jobs) - js.maxJobs + 1)
	}
	if len(js.jobs) >= js.maxJobs {
		return nil, apiErrorf(http.StatusTooManyRequests,
			"job store full (%d jobs running); wait or cancel one", len(js.jobs))
	}
	js.nextSeq++
	job := &smoothJob{
		id:       fmt.Sprintf("j%d", js.nextSeq),
		seq:      js.nextSeq,
		tenant:   tenant,
		meshID:   meshID,
		created:  time.Now(),
		maxIters: maxIters,
		timeout:  timeout,
		state:    jobQueued,
	}
	js.jobs[job.id] = job
	// Count the job's goroutine here, under the same lock that decides
	// closed: a concurrent close() either rejects this add or waits for the
	// run startJob is about to launch — never a Wait that misses it.
	js.wg.Add(1)
	return job, nil
}

// restore inserts a journal-replayed job under its original id and
// sequence number, advancing nextSeq past it so new submissions never
// collide. launch is true when a goroutine will run the job (startJob
// follows; its wg slot is claimed here, mirroring add) and false for jobs
// restored directly in a terminal state.
func (js *jobStore) restore(job *smoothJob, launch bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if job.seq > js.nextSeq {
		js.nextSeq = job.seq
	}
	js.jobs[job.id] = job
	if launch {
		js.wg.Add(1)
	}
}

// abort removes a just-added job whose goroutine will never start (the
// accept could not be journaled), returning its wg slot.
func (js *jobStore) abort(id string) {
	js.mu.Lock()
	delete(js.jobs, id)
	js.mu.Unlock()
	js.wg.Done()
}

// isClosed reports whether the store has begun shutting down. The job
// runner uses it to tell a shutdown cancellation (keep the journal's accept
// record and the checkpoint — the job resumes on the next boot) from a
// client cancellation (journal a terminal record).
func (js *jobStore) isClosed() bool {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.closed
}

// setNextSeq advances the id sequence to at least seq (journal replay saw
// ids that far, including ones that finished and were compacted away).
func (js *jobStore) setNextSeq(seq uint64) {
	js.mu.Lock()
	if seq > js.nextSeq {
		js.nextSeq = seq
	}
	js.mu.Unlock()
}

// get returns the job for id (sweeping expired ones first), or nil.
func (js *jobStore) get(id string) *smoothJob {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.sweepLocked(time.Now())
	return js.jobs[id]
}

// list returns all resident jobs in submission order.
func (js *jobStore) list() []*smoothJob {
	js.mu.Lock()
	js.sweepLocked(time.Now())
	out := make([]*smoothJob, 0, len(js.jobs))
	for _, j := range js.jobs {
		out = append(out, j)
	}
	js.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].seq < out[k].seq })
	return out
}

// Len returns the number of resident jobs (running + retained).
func (js *jobStore) Len() int {
	js.mu.Lock()
	defer js.mu.Unlock()
	return len(js.jobs)
}

// remove deletes the job record outright (DELETE on a terminal job).
func (js *jobStore) remove(id string) {
	js.mu.Lock()
	delete(js.jobs, id)
	js.mu.Unlock()
}

// sweepLocked drops terminal jobs past their retention TTL. Running jobs
// are never evicted. Callers hold js.mu.
func (js *jobStore) sweepLocked(now time.Time) {
	for id, j := range js.jobs {
		j.mu.Lock()
		done, finished := j.state.terminal(), j.finished
		j.mu.Unlock()
		if done && now.Sub(finished) > js.ttl {
			delete(js.jobs, id)
		}
	}
}

// evictTerminalLocked removes up to n of the oldest terminal jobs to make
// room for a new submission. Callers hold js.mu.
func (js *jobStore) evictTerminalLocked(n int) {
	var terminal []*smoothJob
	for _, j := range js.jobs {
		j.mu.Lock()
		done := j.state.terminal()
		j.mu.Unlock()
		if done {
			terminal = append(terminal, j)
		}
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].seq < terminal[k].seq })
	for _, j := range terminal[:min(n, len(terminal))] {
		delete(js.jobs, j.id)
	}
}

// close marks the store closed (rejecting new submissions), cancels every
// non-terminal job, and waits for the job goroutines to drain.
func (js *jobStore) close() { js.closeWithDrain(0) }

// closeWithDrain is close with a grace period: new submissions are rejected
// immediately, but running jobs get up to drain to finish on their own
// before the remainder are canceled. A canceled-at-drain-expiry job on a
// durable server keeps its journal record and checkpoint, so the next Open
// resumes it where it stopped.
func (js *jobStore) closeWithDrain(drain time.Duration) {
	js.mu.Lock()
	js.closed = true
	js.mu.Unlock()

	if drain > 0 {
		done := make(chan struct{})
		go func() {
			js.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
			return
		case <-time.After(drain):
		}
	}

	js.mu.Lock()
	for _, j := range js.jobs {
		j.mu.Lock()
		cancel, terminal := j.cancel, j.state.terminal()
		j.mu.Unlock()
		if !terminal && cancel != nil {
			cancel()
		}
	}
	js.mu.Unlock()
	js.wg.Wait()
}

// startJob launches the job's background run: the same pooled
// executeSmooth path the synchronous endpoint uses, under a fresh context
// carrying the job's own deadline, with the engine's Progress callback
// feeding the job's live counters.
func (s *Server) startJob(job *smoothJob, rec *meshRecord, plan smoothPlan) {
	ctx, cancel := context.WithTimeout(context.Background(), job.timeout)
	job.mu.Lock()
	job.cancel = cancel
	job.mu.Unlock()
	go s.runJob(ctx, cancel, job, rec, plan)
}

// maxJobAttempts caps the retry loop: the first execution plus up to four
// retries of transient failures.
const maxJobAttempts = 5

// transientJobError reports whether a job failure is worth retrying:
// injected faults (the chaos harness's stand-ins for flaky infrastructure)
// and 503-class conditions. Deadline expiry, cancellation, and request
// errors are final.
func transientJobError(err error) bool {
	if errors.Is(err, faultinject.ErrInjected) {
		return true
	}
	var ae apiError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusServiceUnavailable
	}
	return false
}

// jobBackoff is the delay before retry number attempt (1-based): 50ms
// doubling to a 2s cap, plus up to 25% jitter so retries from concurrent
// jobs decorrelate.
func jobBackoff(attempt int) time.Duration {
	d := 50 * time.Millisecond << uint(min(attempt-1, 6))
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d + time.Duration(rand.Int63n(int64(d/4)+1))
}

// sleepCtx sleeps for d, reporting false if ctx expired first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// coordsSnap is a copy of a mesh's coordinates: the replay baseline for a
// retry that has no checkpoint yet (a failed attempt commits its completed
// sweeps to the mesh, so "retry from the start" must restore the start).
type coordsSnap struct {
	pts2 []lams.Point
	pts3 []lams.Point3
}

func captureCoords(rec *meshRecord) coordsSnap {
	rec.mu.RLock()
	defer rec.mu.RUnlock()
	if rec.dim == 3 {
		return coordsSnap{pts3: append([]lams.Point3(nil), rec.tet.Coords...)}
	}
	return coordsSnap{pts2: append([]lams.Point(nil), rec.mesh.Coords...)}
}

func restoreCoords(rec *meshRecord, snap coordsSnap) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.dim == 3 {
		copy(rec.tet.Coords, snap.pts3)
	} else {
		copy(rec.mesh.Coords, snap.pts2)
	}
	rec.gen.Add(1)
	rec.metaMu.Lock()
	rec.qualityStale = true
	rec.metaMu.Unlock()
}

// runJob is the job goroutine: an attempt loop around executeSmooth that
// retries transient failures with capped exponential backoff, resuming each
// retry from the engine's latest checkpoint (so completed sweeps are never
// re-run), and journals retries and the terminal outcome. A cancellation
// that arrives through server shutdown deliberately journals nothing — the
// accept record and on-disk checkpoint stay behind, and the next Open
// resumes the job from them.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, job *smoothJob, rec *meshRecord, plan smoothPlan) {
	defer s.jobs.wg.Done()
	defer cancel()
	defer s.quotas.ReleaseJob(job.tenant)
	job.mu.Lock()
	job.state = jobRunning
	job.started = time.Now()
	attempt := job.attempts
	job.mu.Unlock()

	base := captureCoords(rec)

	progress := func(iter int, q float64) {
		job.progQual.Store(math.Float64bits(q))
		job.progIter.Store(int64(iter))
	}
	checkpoint := func(cp lams.Checkpoint) {
		job.ckptMu.Lock()
		job.ckpt = &cp
		job.ckptMu.Unlock()
		if s.cfg.DataDir != "" {
			if err := writeJobCheckpoint(s.cfg.DataDir, job.id, &cp); err != nil {
				// A failed checkpoint write widens the replay window but
				// breaks nothing: the previous checkpoint file stands.
				s.metrics.snapshotErrs.Add(1)
			}
		}
	}

	var resp smoothResponse
	var err error
	for {
		job.ckptMu.Lock()
		cp := job.ckpt
		job.ckptMu.Unlock()
		extra := []lams.SmoothOption{lams.WithCheckpoint(checkpoint)}
		if cp != nil {
			extra = append(extra, lams.WithResume(cp))
		} else if attempt > 0 {
			restoreCoords(rec, base)
		}
		attempt++
		job.mu.Lock()
		job.attempts = attempt
		job.mu.Unlock()
		resp, err = s.executeSmooth(ctx, rec, plan, progress, extra...)
		if err == nil || ctx.Err() != nil || attempt >= maxJobAttempts || !transientJobError(err) {
			break
		}
		s.metrics.jobsRetried.Add(1)
		_ = s.journal.append(journalRecord{Op: opRetry, Job: job.id, Attempt: attempt, Error: err.Error()})
		if !sleepCtx(ctx, jobBackoff(attempt)) {
			err = ctx.Err()
			break
		}
	}

	// Read the closed flag before taking job.mu: closeWithDrain holds the
	// store lock while canceling jobs, so the reverse order here would be a
	// lock-order inversion. The flag is already set by the time a shutdown
	// cancellation can surface as an error.
	closing := s.jobs.isClosed()
	job.mu.Lock()
	job.finished = time.Now()
	var op journalOp
	interrupted := false
	switch {
	case err == nil:
		job.state = jobDone
		job.result = &resp
		s.metrics.jobsCompleted.Add(1)
		op = opDone
	case errors.Is(err, context.Canceled):
		// DELETE /v1/jobs/{id} (or server shutdown) fired the cancel;
		// the mesh holds the last completed sweep.
		job.state = jobCanceled
		job.errMsg = "canceled"
		s.metrics.jobsCanceled.Add(1)
		op = opCanceled
		interrupted = closing
	default:
		job.state = jobFailed
		job.errMsg = err.Error()
		job.errStatus = errorStatus(err)
		s.metrics.jobsFailed.Add(1)
		op = opFailed
	}
	errMsg := job.errMsg
	job.mu.Unlock()

	if interrupted {
		// Shutdown, not a verdict: leave the accept record and checkpoint
		// for the next Open to resume from.
		return
	}
	_ = s.journal.append(journalRecord{Op: op, Job: job.id, Error: errMsg})
	if s.cfg.DataDir != "" {
		removeJobCheckpoint(s.cfg.DataDir, job.id)
	}
}

// --- jobs endpoints ---

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	infos := make([]jobInfo, len(jobs))
	for i, j := range jobs {
		infos[i] = j.info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": infos})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job := s.jobs.get(r.PathValue("id"))
	if job == nil {
		writeError(w, apiErrorf(http.StatusNotFound, "job %q not found", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.info())
}

// handleCancelJob cancels a queued/running job through its context (202 —
// the job transitions to "canceled" when the engine observes the
// cancellation and commits the last completed sweep), or deletes the
// record of a terminal job (204).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job := s.jobs.get(r.PathValue("id"))
	if job == nil {
		writeError(w, apiErrorf(http.StatusNotFound, "job %q not found", r.PathValue("id")))
		return
	}
	job.mu.Lock()
	terminal, cancel := job.state.terminal(), job.cancel
	job.mu.Unlock()
	if terminal {
		s.jobs.remove(job.id)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if cancel != nil {
		cancel()
	}
	writeJSON(w, http.StatusAccepted, job.info())
}
