package lamsd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// jobState is the lifecycle of an async smooth job.
type jobState string

const (
	jobQueued   jobState = "queued"
	jobRunning  jobState = "running"
	jobDone     jobState = "done"
	jobFailed   jobState = "failed"
	jobCanceled jobState = "canceled"
)

// terminal reports whether the state is final (the TTL sweep only collects
// terminal jobs).
func (st jobState) terminal() bool {
	return st == jobDone || st == jobFailed || st == jobCanceled
}

// smoothJob is one asynchronous smooth: submitted with ?async=1, executed
// by a background goroutine through the same pooled executeSmooth path the
// synchronous endpoint uses, polled via GET /v1/jobs/{id}, and canceled via
// DELETE (which fires the job context's cancel — the same plumbing that
// maps request deadlines onto the sweep engine).
type smoothJob struct {
	id      string
	seq     uint64
	tenant  string
	meshID  string
	created time.Time
	// maxIters is the run's effective iteration cap, the denominator of
	// the progress/ETA estimate.
	maxIters int
	timeout  time.Duration
	cancel   context.CancelFunc

	// Live progress, written by the engine's Progress callback from the
	// converge loop and read lock-free by pollers: the latest measured
	// iteration and the quality it measured.
	progIter atomic.Int64
	progQual atomic.Uint64 // math.Float64bits

	mu        sync.Mutex
	state     jobState
	started   time.Time
	finished  time.Time
	result    *smoothResponse
	errMsg    string
	errStatus int
}

// jobInfo is the JSON shape of a job in every jobs endpoint.
type jobInfo struct {
	ID      string    `json:"id"`
	MeshID  string    `json:"mesh_id"`
	Tenant  string    `json:"tenant"`
	State   jobState  `json:"state"`
	Created time.Time `json:"created"`
	// Iterations and LatestQuality are the engine's live convergence
	// progress: the last measured sweep and the global quality it measured
	// (0 iterations until the initial measurement lands).
	Iterations    int     `json:"iterations"`
	LatestQuality float64 `json:"latest_quality"`
	MaxIters      int     `json:"max_iters"`
	// EtaMS linearly extrapolates the remaining time from the per-sweep
	// pace so far, against the iteration cap — an upper bound, since the
	// convergence criterion usually stops the run earlier. Only present on
	// running jobs that have completed at least one measured sweep.
	EtaMS      *float64        `json:"eta_ms,omitempty"`
	DurationMS float64         `json:"duration_ms"`
	Result     *smoothResponse `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`
	ErrorCode  int             `json:"error_code,omitempty"`
}

func (j *smoothJob) info() jobInfo {
	iter := int(j.progIter.Load())
	qual := math.Float64frombits(j.progQual.Load())
	j.mu.Lock()
	defer j.mu.Unlock()
	info := jobInfo{
		ID:            j.id,
		MeshID:        j.meshID,
		Tenant:        j.tenant,
		State:         j.state,
		Created:       j.created,
		Iterations:    iter,
		LatestQuality: qual,
		MaxIters:      j.maxIters,
		Result:        j.result,
		Error:         j.errMsg,
		ErrorCode:     j.errStatus,
	}
	switch {
	case j.state.terminal():
		info.DurationMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	case j.state == jobRunning:
		elapsed := time.Since(j.started)
		info.DurationMS = float64(elapsed) / float64(time.Millisecond)
		if iter > 0 && iter < j.maxIters {
			eta := float64(elapsed) / float64(iter) * float64(j.maxIters-iter) / float64(time.Millisecond)
			info.EtaMS = &eta
		}
	}
	return info
}

// jobStore is the in-memory job registry. Terminal jobs are retained for
// ttl (so clients can fetch results after completion) and swept lazily on
// every access — no background goroutine needed — with maxJobs bounding
// total residency against pollers that never collect their results.
type jobStore struct {
	ttl     time.Duration
	maxJobs int

	mu      sync.Mutex
	jobs    map[string]*smoothJob
	nextSeq uint64
	closed  bool

	wg sync.WaitGroup // running job goroutines; Close waits for them
}

func newJobStore(ttl time.Duration, maxJobs int) *jobStore {
	return &jobStore{ttl: ttl, maxJobs: maxJobs, jobs: make(map[string]*smoothJob)}
}

// add registers a new queued job. It fails when the server is shutting
// down or when even evicting terminal jobs cannot make room.
func (js *jobStore) add(tenant, meshID string, maxIters int, timeout time.Duration) (*smoothJob, error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.closed {
		return nil, apiErrorf(http.StatusServiceUnavailable, "server is shutting down")
	}
	js.sweepLocked(time.Now())
	if len(js.jobs) >= js.maxJobs {
		// Retained results yield to new work: evict the oldest terminal
		// jobs to make room, and reject only when the cap is filled by
		// jobs that are actually running.
		js.evictTerminalLocked(len(js.jobs) - js.maxJobs + 1)
	}
	if len(js.jobs) >= js.maxJobs {
		return nil, apiErrorf(http.StatusTooManyRequests,
			"job store full (%d jobs running); wait or cancel one", len(js.jobs))
	}
	js.nextSeq++
	job := &smoothJob{
		id:       fmt.Sprintf("j%d", js.nextSeq),
		seq:      js.nextSeq,
		tenant:   tenant,
		meshID:   meshID,
		created:  time.Now(),
		maxIters: maxIters,
		timeout:  timeout,
		state:    jobQueued,
	}
	js.jobs[job.id] = job
	// Count the job's goroutine here, under the same lock that decides
	// closed: a concurrent close() either rejects this add or waits for the
	// run startJob is about to launch — never a Wait that misses it.
	js.wg.Add(1)
	return job, nil
}

// get returns the job for id (sweeping expired ones first), or nil.
func (js *jobStore) get(id string) *smoothJob {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.sweepLocked(time.Now())
	return js.jobs[id]
}

// list returns all resident jobs in submission order.
func (js *jobStore) list() []*smoothJob {
	js.mu.Lock()
	js.sweepLocked(time.Now())
	out := make([]*smoothJob, 0, len(js.jobs))
	for _, j := range js.jobs {
		out = append(out, j)
	}
	js.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].seq < out[k].seq })
	return out
}

// Len returns the number of resident jobs (running + retained).
func (js *jobStore) Len() int {
	js.mu.Lock()
	defer js.mu.Unlock()
	return len(js.jobs)
}

// remove deletes the job record outright (DELETE on a terminal job).
func (js *jobStore) remove(id string) {
	js.mu.Lock()
	delete(js.jobs, id)
	js.mu.Unlock()
}

// sweepLocked drops terminal jobs past their retention TTL. Running jobs
// are never evicted. Callers hold js.mu.
func (js *jobStore) sweepLocked(now time.Time) {
	for id, j := range js.jobs {
		j.mu.Lock()
		done, finished := j.state.terminal(), j.finished
		j.mu.Unlock()
		if done && now.Sub(finished) > js.ttl {
			delete(js.jobs, id)
		}
	}
}

// evictTerminalLocked removes up to n of the oldest terminal jobs to make
// room for a new submission. Callers hold js.mu.
func (js *jobStore) evictTerminalLocked(n int) {
	var terminal []*smoothJob
	for _, j := range js.jobs {
		j.mu.Lock()
		done := j.state.terminal()
		j.mu.Unlock()
		if done {
			terminal = append(terminal, j)
		}
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].seq < terminal[k].seq })
	for _, j := range terminal[:min(n, len(terminal))] {
		delete(js.jobs, j.id)
	}
}

// close marks the store closed (rejecting new submissions), cancels every
// non-terminal job, and waits for the job goroutines to drain.
func (js *jobStore) close() {
	js.mu.Lock()
	js.closed = true
	for _, j := range js.jobs {
		j.mu.Lock()
		cancel, terminal := j.cancel, j.state.terminal()
		j.mu.Unlock()
		if !terminal && cancel != nil {
			cancel()
		}
	}
	js.mu.Unlock()
	js.wg.Wait()
}

// startJob launches the job's background run: the same pooled
// executeSmooth path the synchronous endpoint uses, under a fresh context
// carrying the job's own deadline, with the engine's Progress callback
// feeding the job's live counters.
func (s *Server) startJob(job *smoothJob, rec *meshRecord, plan smoothPlan) {
	ctx, cancel := context.WithTimeout(context.Background(), job.timeout)
	job.mu.Lock()
	job.cancel = cancel
	job.mu.Unlock()
	go func() {
		defer s.jobs.wg.Done()
		defer cancel()
		defer s.quotas.ReleaseJob(job.tenant)
		job.mu.Lock()
		job.state = jobRunning
		job.started = time.Now()
		job.mu.Unlock()

		resp, err := s.executeSmooth(ctx, rec, plan, func(iter int, q float64) {
			job.progQual.Store(math.Float64bits(q))
			job.progIter.Store(int64(iter))
		})

		job.mu.Lock()
		defer job.mu.Unlock()
		job.finished = time.Now()
		switch {
		case err == nil:
			job.state = jobDone
			job.result = &resp
			s.metrics.jobsCompleted.Add(1)
		case errors.Is(err, context.Canceled):
			// DELETE /v1/jobs/{id} (or server shutdown) fired the cancel;
			// the mesh holds the last completed sweep.
			job.state = jobCanceled
			job.errMsg = "canceled"
			s.metrics.jobsCanceled.Add(1)
		default:
			job.state = jobFailed
			job.errMsg = err.Error()
			job.errStatus = errorStatus(err)
			s.metrics.jobsFailed.Add(1)
		}
	}()
}

// --- jobs endpoints ---

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	infos := make([]jobInfo, len(jobs))
	for i, j := range jobs {
		infos[i] = j.info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": infos})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job := s.jobs.get(r.PathValue("id"))
	if job == nil {
		writeError(w, apiErrorf(http.StatusNotFound, "job %q not found", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.info())
}

// handleCancelJob cancels a queued/running job through its context (202 —
// the job transitions to "canceled" when the engine observes the
// cancellation and commits the last completed sweep), or deletes the
// record of a terminal job (204).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job := s.jobs.get(r.PathValue("id"))
	if job == nil {
		writeError(w, apiErrorf(http.StatusNotFound, "job %q not found", r.PathValue("id")))
		return
	}
	job.mu.Lock()
	terminal, cancel := job.state.terminal(), job.cancel
	job.mu.Unlock()
	if terminal {
		s.jobs.remove(job.id)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if cancel != nil {
		cancel()
	}
	writeJSON(w, http.StatusAccepted, job.info())
}
