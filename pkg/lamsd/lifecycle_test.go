package lamsd

// Tests for the production-lifecycle layer: async smooth jobs, the durable
// mesh store (including crash consistency of the snapshot protocol),
// per-tenant quotas, engine-pool slot accounting under failure, and the
// eviction of per-mesh engine caches on delete and reorder.

import (
	"bytes"
	"context"
	"encoding/json"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lams/pkg/lams"
)

// newDurableServer boots a Server through Open with persistence into dir.
// Tests close it explicitly (Close is part of what they exercise); the
// helper does not register a cleanup so crash-simulation tests can abandon
// a server without triggering its final snapshot.
func newDurableServer(t *testing.T, dir string, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	opts = append(opts, WithPersistence(dir, time.Hour))
	s, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doTenant is doJSON with an X-Tenant header.
func doTenant(t *testing.T, method, url, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data := new(bytes.Buffer)
	_, _ = data.ReadFrom(resp.Body)
	return resp, data.Bytes()
}

// pollJob polls GET /v1/jobs/{id} until the job reaches want (or fails the
// test on an unexpected terminal state or timeout).
func pollJob(t *testing.T, base, id string, want jobState) jobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll job %s: status %d: %s", id, resp.StatusCode, data)
		}
		var info jobInfo
		if err := json.Unmarshal(data, &info); err != nil {
			t.Fatal(err)
		}
		if info.State == want {
			return info
		}
		if info.State.terminal() {
			t.Fatalf("job %s ended %s (error %q), want %s", id, info.State, info.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %s in time", id, want)
	return jobInfo{}
}

func exportPart(t *testing.T, base, id, part string) []byte {
	t.Helper()
	resp, data := doJSON(t, http.MethodGet, base+"/v1/meshes/"+id+"/export?part="+part, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export %s %s: status %d", id, part, resp.StatusCode)
	}
	return data
}

// uploadRaw posts codec-format node/ele payloads as a multipart upload.
func uploadRaw(t *testing.T, base string, node, ele []byte) meshInfo {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	nw, err := mw.CreateFormFile("node", "m.node")
	if err != nil {
		t.Fatal(err)
	}
	nw.Write(node)
	ew, err := mw.CreateFormFile("ele", "m.ele")
	if err != nil {
		t.Fatal(err)
	}
	ew.Write(ele)
	mw.Close()
	resp, err := http.Post(base+"/v1/meshes", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info meshInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	return info
}

// --- async jobs ---

func TestServerAsyncSmoothJobLifecycle(t *testing.T) {
	s, ts := newTestServer(t)
	info := createDomainMesh(t, ts.URL, "wrench", 800)

	body := map[string]any{"workers": 1, "max_iters": 3, "tol": -1}
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth?async=1", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, data)
	}
	var job jobInfo
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.MeshID != info.ID || job.MaxIters != 3 {
		t.Fatalf("malformed job info: %s", data)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+job.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, job.ID)
	}

	done := pollJob(t, ts.URL, job.ID, jobDone)
	if done.Result == nil {
		t.Fatal("done job has no result")
	}
	if done.Result.Iterations != 3 {
		t.Errorf("result iterations = %d, want 3 (tol -1 disables convergence)", done.Result.Iterations)
	}
	if done.Iterations != 3 || done.LatestQuality != done.Result.FinalQuality {
		t.Errorf("live progress (%d, %g) disagrees with result (%d, %g)",
			done.Iterations, done.LatestQuality, done.Result.Iterations, done.Result.FinalQuality)
	}
	if done.DurationMS <= 0 {
		t.Errorf("done job duration_ms = %g, want > 0", done.DurationMS)
	}
	if got := s.metrics.jobsCompleted.Value(); got != 1 {
		t.Errorf("jobs_completed = %d, want 1", got)
	}

	// The listing includes the retained job.
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil)
	var list struct {
		Jobs []jobInfo `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Fatalf("job listing: status %d, %s", resp.StatusCode, data)
	}

	// DELETE on a terminal job removes the record; the id then 404s.
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete finished job: status %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+job.ID, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("get deleted job: status %d, want 404", resp.StatusCode)
	}
}

func TestServerAsyncJobCancel(t *testing.T) {
	s, ts := newTestServer(t)
	info := createDomainMesh(t, ts.URL, "carabiner", 20000)

	// A run long enough to still be in flight when the cancel arrives.
	body := map[string]any{"workers": 1, "max_iters": 100000, "tol": -1}
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth?async=1", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, data)
	}
	var job jobInfo
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}

	resp, data = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running job: status %d: %s", resp.StatusCode, data)
	}
	got := pollJob(t, ts.URL, job.ID, jobCanceled)
	if got.Result != nil {
		t.Error("canceled job carries a result")
	}
	if v := s.metrics.jobsCanceled.Value(); v != 1 {
		t.Errorf("jobs_canceled = %d, want 1", v)
	}
	// The engine observed the cancellation and returned its pool slot.
	waitInUseZero(t, s)
}

// waitInUseZero waits for the pool's in-use gauge to drain (async runners
// release their slots from goroutines, so allow a moment).
func waitInUseZero(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.pool.Stats().InUse == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("pool in_use = %d, want 0", s.pool.Stats().InUse)
}

// TestServerAsyncMatchesSyncAfterRestart is the acceptance check for the
// async + durability tentpole legs together: a mesh created on one server,
// snapshotted, and restored by a second server must produce — through the
// async job path — exactly the bytes the synchronous endpoint produces for
// the same mesh and parameters on a fresh in-memory server.
func TestServerAsyncMatchesSyncAfterRestart(t *testing.T) {
	dir := t.TempDir()
	smoothBody := map[string]any{"workers": 2, "max_iters": 3, "tol": -1}

	// Server A: create the mesh, capture its codec bytes, snapshot, stop.
	srvA, tsA := newDurableServer(t, dir)
	meshA := createDomainMesh(t, tsA.URL, "wrench", 800)
	node := exportPart(t, tsA.URL, meshA.ID, "node")
	ele := exportPart(t, tsA.URL, meshA.ID, "ele")
	if err := srvA.Close(); err != nil {
		t.Fatalf("close A: %v", err)
	}

	// Server B: restore, smooth asynchronously, export.
	srvB, tsB := newDurableServer(t, dir)
	defer srvB.Close()
	resp, data := doJSON(t, http.MethodGet, tsB.URL+"/v1/meshes/"+meshA.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored mesh not found: status %d: %s", resp.StatusCode, data)
	}
	resp, data = doJSON(t, http.MethodPost, tsB.URL+"/v1/meshes/"+meshA.ID+"/smooth?async=true", smoothBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit on restored server: status %d: %s", resp.StatusCode, data)
	}
	var job jobInfo
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	asyncResult := pollJob(t, tsB.URL, job.ID, jobDone)
	asyncNode := exportPart(t, tsB.URL, meshA.ID, "node")

	// Server C: the same mesh bytes through the synchronous endpoint.
	_, tsC := newTestServer(t)
	meshC := uploadRaw(t, tsC.URL, node, ele)
	resp, data = doJSON(t, http.MethodPost, tsC.URL+"/v1/meshes/"+meshC.ID+"/smooth", smoothBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync smooth: status %d: %s", resp.StatusCode, data)
	}
	var syncResp smoothResponse
	if err := json.Unmarshal(data, &syncResp); err != nil {
		t.Fatal(err)
	}
	syncNode := exportPart(t, tsC.URL, meshC.ID, "node")

	if !bytes.Equal(asyncNode, syncNode) {
		t.Errorf("async-after-restart coordinates differ from sync (%d vs %d bytes)", len(asyncNode), len(syncNode))
	}
	if asyncResult.Result.FinalQuality != syncResp.FinalQuality {
		t.Errorf("final quality: async-after-restart %g, sync %g",
			asyncResult.Result.FinalQuality, syncResp.FinalQuality)
	}
}

// --- durable store ---

func TestServerSnapshotRestoreMetadata(t *testing.T) {
	dir := t.TempDir()
	srvA, tsA := newDurableServer(t, dir)

	resp, data := doTenant(t, http.MethodPost, tsA.URL+"/v1/meshes", "alice",
		map[string]any{"domain": "wrench", "target_verts": 600})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	var m1 meshInfo
	if err := json.Unmarshal(data, &m1); err != nil {
		t.Fatal(err)
	}
	resp, data = doJSON(t, http.MethodPost, tsA.URL+"/v1/meshes/"+m1.ID+"/reorder",
		map[string]any{"ordering": "RDR"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reorder: status %d: %s", resp.StatusCode, data)
	}
	// A 3D mesh rides along: both codecs must round-trip.
	resp, data = doJSON(t, http.MethodPost, tsA.URL+"/v1/meshes",
		map[string]any{"domain": "cube", "dim": 3, "target_verts": 500})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create tet: status %d: %s", resp.StatusCode, data)
	}
	var m2 meshInfo
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	nodeBefore := exportPart(t, tsA.URL, m1.ID, "node")
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	srvB, tsB := newDurableServer(t, dir)
	defer srvB.Close()
	if n := srvB.store.Len(); n != 2 {
		t.Fatalf("restored %d meshes, want 2", n)
	}
	resp, data = doJSON(t, http.MethodGet, tsB.URL+"/v1/meshes/"+m1.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored mesh: status %d", resp.StatusCode)
	}
	var got meshInfo
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Ordering != "RDR" || got.Name != "wrench" || got.Dim != 2 {
		t.Errorf("restored metadata: ordering %q name %q dim %d, want RDR/wrench/2", got.Ordering, got.Name, got.Dim)
	}
	if v1, e1 := summaryCounts(t, m1); true {
		if v2, e2 := summaryCounts(t, got); v1 != v2 || e1 != e2 {
			t.Errorf("restored summary (%d,%d), want (%d,%d)", v2, e2, v1, e1)
		}
	}
	if !bytes.Equal(exportPart(t, tsB.URL, m1.ID, "node"), nodeBefore) {
		t.Error("restored coordinates differ from the snapshotted mesh")
	}
	if got3 := srvB.store.Get(m2.ID); got3 == nil || got3.dim != 3 {
		t.Fatalf("tet mesh %s not restored", m2.ID)
	}
	// Tenant ownership survives (the quota keeps counting it).
	if n := srvB.store.CountTenant("alice"); n != 1 {
		t.Errorf("CountTenant(alice) = %d after restore, want 1", n)
	}
	// Sequence numbers advanced past the restored records: a new mesh gets
	// a fresh id, not a collision.
	m3 := createDomainMesh(t, tsB.URL, "wrench", 400)
	if m3.ID == m1.ID || m3.ID == m2.ID {
		t.Errorf("new mesh reused id %s", m3.ID)
	}
}

// TestServerCrashMidSnapshot simulates a crash partway through a snapshot
// write: a stale temp file sits next to the last complete snapshot. Restart
// must load the complete snapshot, ignore (and remove) the partial file,
// and lose only what the interrupted snapshot would have added.
func TestServerCrashMidSnapshot(t *testing.T) {
	dir := t.TempDir()
	srvA, tsA := newDurableServer(t, dir)
	m1 := createDomainMesh(t, tsA.URL, "wrench", 600)
	if err := srvA.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Mutations after the snapshot, then the "crash": a torn temp file with
	// a plausible prefix but truncated payloads. srvA is abandoned, not
	// closed — Close would write a fresh complete snapshot.
	m2 := createDomainMesh(t, tsA.URL, "wrench", 400)
	torn := []byte(snapshotMagic + "\n{\"saved\":\"2026-01-01T00:00:00Z\",\"count\":2,\"next_seq\":2}\n" +
		`{"id":"m1","seq":1,"dim":2,"node_bytes":99999,"ele_bytes":99999}` + "\ntruncated")
	if err := os.WriteFile(filepath.Join(dir, snapshotTmp), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	srvB, tsB := newDurableServer(t, dir)
	defer srvB.Close()
	if n := srvB.store.Len(); n != 1 {
		t.Fatalf("restored %d meshes, want 1 (the last complete snapshot)", n)
	}
	resp, _ := doJSON(t, http.MethodGet, tsB.URL+"/v1/meshes/"+m1.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("mesh %s from the complete snapshot: status %d", m1.ID, resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet, tsB.URL+"/v1/meshes/"+m2.ID, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("mesh %s was never fully snapshotted: status %d, want 404", m2.ID, resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotTmp)); !os.IsNotExist(err) {
		t.Errorf("stale temp snapshot not removed: %v", err)
	}
	// The next snapshot cycle is healthy.
	if err := srvB.Snapshot(); err != nil {
		t.Errorf("snapshot after crash recovery: %v", err)
	}
}

// --- tenant quotas ---

func TestServerTenantRateLimit(t *testing.T) {
	_, ts := newTestServer(t, WithTenantQuotas(0.01, 2, 0, 0))

	for i := 0; i < 2; i++ {
		resp, data := doTenant(t, http.MethodGet, ts.URL+"/v1/orderings", "alice", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: status %d: %s", i, resp.StatusCode, data)
		}
	}
	resp, data := doTenant(t, http.MethodGet, ts.URL+"/v1/orderings", "alice", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained bucket: status %d, want 429: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive seconds hint", ra)
	}
	// Buckets are per tenant: another key (and the default tenant) proceed.
	if resp, _ := doTenant(t, http.MethodGet, ts.URL+"/v1/orderings", "bob", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("tenant bob throttled by alice's bucket: status %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/orderings", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("default tenant throttled by alice's bucket: status %d", resp.StatusCode)
	}
	// Probe endpoints bypass tenant admission entirely.
	for i := 0; i < 4; i++ {
		if resp, _ := doTenant(t, http.MethodGet, ts.URL+"/healthz", "alice", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz throttled: status %d", resp.StatusCode)
		}
	}
	// Malformed tenant keys are rejected before they can allocate state.
	resp, _ = doTenant(t, http.MethodGet, ts.URL+"/v1/orderings", "no spaces!", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid X-Tenant: status %d, want 400", resp.StatusCode)
	}
}

func TestServerTenantMeshQuota(t *testing.T) {
	_, ts := newTestServer(t, WithTenantQuotas(0, 0, 1, 0))

	resp, data := doTenant(t, http.MethodPost, ts.URL+"/v1/meshes", "alice",
		map[string]any{"domain": "wrench", "target_verts": 400})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first mesh: status %d: %s", resp.StatusCode, data)
	}
	var m1 meshInfo
	if err := json.Unmarshal(data, &m1); err != nil {
		t.Fatal(err)
	}
	resp, _ = doTenant(t, http.MethodPost, ts.URL+"/v1/meshes", "alice",
		map[string]any{"domain": "wrench", "target_verts": 400})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over mesh quota: status %d, want 429", resp.StatusCode)
	}
	// The cap is per tenant, not global.
	resp, _ = doTenant(t, http.MethodPost, ts.URL+"/v1/meshes", "bob",
		map[string]any{"domain": "wrench", "target_verts": 400})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("tenant bob blocked by alice's quota: status %d", resp.StatusCode)
	}
	// Deleting frees the slot.
	if resp, _ := doTenant(t, http.MethodDelete, ts.URL+"/v1/meshes/"+m1.ID, "alice", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp, _ = doTenant(t, http.MethodPost, ts.URL+"/v1/meshes", "alice",
		map[string]any{"domain": "wrench", "target_verts": 400})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("create after delete: status %d, want 201", resp.StatusCode)
	}
}

func TestServerTenantJobQuota(t *testing.T) {
	_, ts := newTestServer(t, WithTenantQuotas(0, 0, 0, 1))
	info := createDomainMesh(t, ts.URL, "carabiner", 20000)

	long := map[string]any{"workers": 1, "max_iters": 100000, "tol": -1}
	resp, data := doTenant(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth?async=1", "alice", long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first job: status %d: %s", resp.StatusCode, data)
	}
	var job jobInfo
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	resp, _ = doTenant(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth?async=1", "alice", long)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over job quota: status %d, want 429", resp.StatusCode)
	}
	// Another tenant's in-flight budget is untouched; a short job clears.
	short := map[string]any{"workers": 1, "max_iters": 1, "tol": -1}
	resp, data = doTenant(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth?async=1", "bob", short)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant bob blocked by alice's job quota: status %d: %s", resp.StatusCode, data)
	}
	// Cancel alice's job; once its goroutine releases the slot a new
	// submission is admitted again.
	if resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, _ = doTenant(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth?async=1", "alice", short)
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if resp.StatusCode != http.StatusTooManyRequests || time.Now().After(deadline) {
			t.Fatalf("resubmit after cancel: status %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- pool slot accounting and cache eviction ---

// TestServerPoolReleasedOnFailure injects failing runs through the pooled
// path and asserts the engine slot always comes back: a run that fails
// inside the engine (bad schedule smuggled past planning) and a run cut by
// its deadline must both leave in_use at 0 and the pool serviceable.
func TestServerPoolReleasedOnFailure(t *testing.T) {
	s, ts := newTestServer(t, WithMaxConcurrentSmooths(1))
	info := createDomainMesh(t, ts.URL, "wrench", 800)
	rec := s.store.Get(info.ID)

	// Failure inside the engine, after the slot is held: the handcrafted
	// plan bypasses planSmooth's validation the way a future refactor bug
	// would.
	bad := smoothPlan{
		kernName: "plain", schedule: lams.DefaultSchedule, partitions: 1,
		workers: 1, checkEvery: 1, maxIters: 2, defaultMetric: true,
		opts: []lams.SmoothOption{lams.WithKernel(lams.PlainKernel()), lams.WithSchedule("no-such-schedule")},
	}
	if _, err := s.executeSmooth(context.Background(), rec, bad, nil); err == nil {
		t.Fatal("bad plan did not fail")
	}
	if got := s.pool.Stats().InUse; got != 0 {
		t.Fatalf("in_use = %d after engine failure, want 0 (slot leaked)", got)
	}

	// Failure by deadline, through the HTTP path.
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth?timeout=1ns", nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline-cut smooth: status %d, want 504", resp.StatusCode)
	}
	waitInUseZero(t, s)

	// With capacity 1, any leaked slot would deadlock this request.
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth",
		map[string]any{"max_iters": 1, "tol": -1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("smooth after failures: status %d: %s", resp.StatusCode, data)
	}
}

// TestServerDeleteEvictsWarmDecomposition pins the lifecycle bugfix: a warm
// partitioned engine caches its decomposition against the mesh object, so
// deleting the mesh must strip that cache from every parked engine — the
// pool used to hold the memory until the store emptied.
func TestServerDeleteEvictsWarmDecomposition(t *testing.T) {
	s, ts := newTestServer(t)
	m1 := createDomainMesh(t, ts.URL, "wrench", 800)
	m2 := createDomainMesh(t, ts.URL, "wrench", 800)

	part := map[string]any{"partitions": 2, "max_iters": 1, "tol": -1}
	if resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+m1.ID+"/smooth", part); resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned smooth: status %d: %s", resp.StatusCode, data)
	}
	live1 := s.store.Get(m1.ID).liveMesh()

	// Delete m1; m2 keeps the store non-empty so this exercises targeted
	// eviction, not the trim-on-empty path.
	if resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/meshes/"+m1.ID, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatal("delete failed")
	}
	s.pool.mu.Lock()
	idle := 0
	for _, list := range s.pool.idle {
		for _, eng := range list {
			idle++
			if eng.DropMeshCache(live1) {
				t.Error("a parked engine still cached the deleted mesh's decomposition")
			}
		}
	}
	s.pool.mu.Unlock()
	if idle == 0 {
		t.Fatal("no parked engines — the eviction path was not exercised")
	}

	// Control: the same probe detects a live cache (the check above is not
	// vacuous), using m2's still-resident decomposition.
	if resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+m2.ID+"/smooth", part); resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned smooth m2: status %d: %s", resp.StatusCode, data)
	}
	live2 := s.store.Get(m2.ID).liveMesh()
	s.pool.mu.Lock()
	found := false
	for _, list := range s.pool.idle {
		for _, eng := range list {
			found = found || eng.DropMeshCache(live2)
		}
	}
	s.pool.mu.Unlock()
	if !found {
		t.Error("probe found no decomposition cache for a resident mesh — the assertions above prove nothing")
	}
}

// TestPoolCondemnedSweep covers the checked-out window: a mesh deleted
// while an engine holding its decomposition is in flight must be swept when
// that engine returns to the pool.
func TestPoolCondemnedSweep(t *testing.T) {
	p := newEnginePool(2, nil)
	m, err := lams.GenerateMesh("wrench", 500)
	if err != nil {
		t.Fatal(err)
	}
	key := engineKey{Dim: 2, Kernel: "plain", Workers: 1, Schedule: lams.DefaultSchedule,
		Partitions: 2, Partitioner: lams.DefaultPartitioner}
	ctx := context.Background()
	eng, err := p.Acquire(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Smooth(ctx, m,
		lams.WithPartitions(2), lams.WithMaxIterations(1), lams.WithTolerance(-1)); err != nil {
		t.Fatal(err)
	}
	// The mesh is deleted while the engine is still checked out.
	p.EvictMesh(m)
	if len(p.condemned) != 1 {
		t.Fatalf("condemned list has %d entries, want 1 (engine in flight)", len(p.condemned))
	}
	p.Release(key, eng)
	if p.condemned != nil || p.condemnedAll {
		t.Error("condemned list not cleared after the pool drained")
	}
	eng2, err := p.Acquire(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release(key, eng2)
	if eng2 != eng {
		t.Fatal("pool did not hand back the parked engine")
	}
	if eng2.DropMeshCache(m) {
		t.Error("returning engine kept the deleted mesh's decomposition cache")
	}
}

// TestServerReorderEvictsStaleDecomposition: a reorder replaces the mesh
// object, so decompositions cached against the old object can never be hit
// again — they must be dropped, not left pinning the pre-reorder mesh.
func TestServerReorderEvictsStaleDecomposition(t *testing.T) {
	s, ts := newTestServer(t)
	m1 := createDomainMesh(t, ts.URL, "wrench", 800)

	part := map[string]any{"partitions": 2, "max_iters": 1, "tol": -1}
	if resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+m1.ID+"/smooth", part); resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned smooth: status %d: %s", resp.StatusCode, data)
	}
	rec := s.store.Get(m1.ID)
	oldPtr := rec.liveMesh()

	if resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+m1.ID+"/reorder",
		map[string]any{"ordering": "RDR"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("reorder: status %d: %s", resp.StatusCode, data)
	}
	if rec.liveMesh() == oldPtr {
		t.Fatal("reorder did not publish the new mesh object")
	}
	s.pool.mu.Lock()
	for _, list := range s.pool.idle {
		for _, eng := range list {
			if eng.DropMeshCache(oldPtr) {
				t.Error("a parked engine still cached the pre-reorder mesh")
			}
		}
	}
	s.pool.mu.Unlock()
	// The partitioned path still works against the reordered mesh.
	if resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+m1.ID+"/smooth", part); resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned smooth after reorder: status %d: %s", resp.StatusCode, data)
	}
}

// --- timeout validation ---

// TestParseTimeoutValidation pins the ?timeout contract: zero, negative,
// and unparsable values are a 400 (never an expired or unbounded context),
// valid values are honored, and oversized values clamp to -max-timeout.
func TestParseTimeoutValidation(t *testing.T) {
	s := New(WithTimeouts(2*time.Second, 5*time.Second))
	cases := []struct {
		q    string
		want time.Duration
		bad  bool
	}{
		{q: "", want: 2 * time.Second},
		{q: "timeout=3s", want: 3 * time.Second},
		{q: "timeout=10m", want: 5 * time.Second}, // clamped, not rejected
		{q: "timeout=0", bad: true},
		{q: "timeout=0s", bad: true},
		{q: "timeout=-3s", bad: true},
		{q: "timeout=banana", bad: true},
		{q: "timeout=12", bad: true}, // bare numbers are not durations
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, "/v1/orderings?"+tc.q, nil)
		d, err := s.parseTimeout(r)
		if tc.bad {
			if err == nil {
				t.Errorf("%q: accepted as %v, want 400", tc.q, d)
			} else if errorStatus(err) != http.StatusBadRequest {
				t.Errorf("%q: status %d, want 400", tc.q, errorStatus(err))
			}
			continue
		}
		if err != nil || d != tc.want {
			t.Errorf("%q: (%v, %v), want %v", tc.q, d, err, tc.want)
		}
	}

	// End to end: the middleware serves the 400 before any work runs, on
	// sync and async submissions alike.
	_, ts := newTestServer(t)
	info := createDomainMesh(t, ts.URL, "wrench", 400)
	for _, q := range []string{"timeout=0", "timeout=-1s", "timeout=banana", "async=1&timeout=0"} {
		resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/meshes/"+info.ID+"/smooth?"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("smooth?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestJobStoreSweep covers retention directly: terminal jobs expire after
// the TTL, the oldest terminal jobs are evicted over the cap, and running
// jobs are never collected.
func TestJobStoreSweep(t *testing.T) {
	js := newJobStore(50*time.Millisecond, 2)
	mk := func(state jobState) *smoothJob {
		j, err := js.add(DefaultTenant, "m1", 10, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		js.wg.Done() // no runner goroutine in this test
		j.mu.Lock()
		j.state = state
		j.finished = time.Now()
		j.mu.Unlock()
		return j
	}
	running := mk(jobRunning)
	done1 := mk(jobDone)
	// Over the cap of 2: the oldest terminal job (done1) is evicted, the
	// running job survives.
	done2 := mk(jobDone)
	if js.get(done1.id) != nil {
		t.Error("oldest terminal job not evicted over the cap")
	}
	if js.get(running.id) == nil || js.get(done2.id) == nil {
		t.Error("sweep evicted the wrong jobs")
	}
	// TTL expiry collects done2; the running job still survives.
	time.Sleep(60 * time.Millisecond)
	if js.get(done2.id) != nil {
		t.Error("terminal job survived its TTL")
	}
	if js.get(running.id) == nil {
		t.Error("running job collected by the TTL sweep")
	}
	running.mu.Lock()
	running.state = jobCanceled
	running.finished = time.Now()
	running.mu.Unlock()
}
