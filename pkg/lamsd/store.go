package lamsd

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lams/pkg/lams"
)

// meshRecord is one resident mesh and its bookkeeping.
//
// Two locks with a strict order (mu before metaMu, when both are needed):
//
//   - mu serializes access to the mesh contents. Smoothing takes the write
//     lock for the duration of the run; reorder takes it only to commit;
//     export and analysis take the read lock just long enough to clone.
//   - metaMu guards the cheap display metadata (ordering, run counts,
//     cached quality), so summaries and listings never wait behind an
//     in-flight smooth of the mesh they describe.
//
// Handlers lock the record, never the store, while doing mesh work, so a
// long smooth on one mesh does not block requests for another.
type meshRecord struct {
	id      string
	seq     uint64
	created time.Time
	name    string // originating domain, or "upload"
	// tenant is the X-Tenant key that created the mesh (the per-tenant
	// resident-mesh quota counts it against this key). It never changes
	// after Add.
	tenant string
	// dim is the mesh dimension: 2 (triangles, mesh set) or 3 (tetrahedra,
	// tet set). It never changes after Add.
	dim int
	// summary is computed once at Add time: it is purely topological
	// (counts and degrees), which neither smoothing nor renumbering changes.
	// It holds lams.MeshStats (dim 2) or lams.TetMeshStats (dim 3).
	summary any

	mu   sync.RWMutex
	mesh *lams.Mesh    // set when dim == 2
	tet  *lams.TetMesh // set when dim == 3
	// gen counts mesh mutations. It is incremented under mu's write lock
	// but read atomically anywhere, letting off-lock computations (reorder,
	// quality refresh) detect that the mesh changed under them and discard
	// their result instead of committing stale data.
	gen atomic.Uint64
	// live mirrors the current mesh pointer (*lams.Mesh or *lams.TetMesh —
	// the same value rec.mesh/rec.tet hold under mu) so eviction paths can
	// learn which mesh a warm engine's decomposition cache references
	// without waiting on mu behind an in-flight smooth. Updated at Add and
	// at every reorder commit.
	live atomic.Value

	metaMu     sync.Mutex
	ordering   string // last applied ordering ("ORI" until reordered)
	orderTime  time.Duration
	smoothRuns int64
	// quality caches the default-metric global quality so summaries and
	// listings are O(1); qualityStale forces a lazy recompute after an
	// operation that changed (or may have changed) the coordinates under a
	// different metric.
	quality      float64
	qualityStale bool
}

// numVerts returns the record's vertex count, which never changes after
// Add. Callers hold rec.mu (read or write).
func (rec *meshRecord) numVerts() int {
	if rec.dim == 3 {
		return rec.tet.NumVerts()
	}
	return rec.mesh.NumVerts()
}

// meshStore is the in-memory mesh registry: id → record, bounded by
// maxMeshes so a misbehaving client cannot grow the server without limit.
type meshStore struct {
	maxMeshes int

	// mutations counts registry- and mesh-level changes (adds, deletes,
	// committed reorders and smooths). The periodic snapshotter compares it
	// against the value it last persisted, so an idle server stops
	// rewriting identical snapshots.
	mutations atomic.Uint64

	mu      sync.Mutex
	records map[string]*meshRecord
	nextSeq uint64
}

func newMeshStore(maxMeshes int) *meshStore {
	if maxMeshes < 1 {
		maxMeshes = 1
	}
	return &meshStore{maxMeshes: maxMeshes, records: make(map[string]*meshRecord)}
}

// Add registers a 2D mesh and returns its record, or an error when the
// store is at capacity (the handler maps it to 507 Insufficient Storage).
func (st *meshStore) Add(m *lams.Mesh, name, tenant string) (*meshRecord, error) {
	return st.add(&meshRecord{dim: 2, mesh: m, summary: m.Summary(), name: name, tenant: tenant})
}

// AddTet registers a 3D mesh, with the same capacity bound as Add.
func (st *meshStore) AddTet(m *lams.TetMesh, name, tenant string) (*meshRecord, error) {
	return st.add(&meshRecord{dim: 3, tet: m, summary: m.Summary(), name: name, tenant: tenant})
}

func (st *meshStore) add(rec *meshRecord) (*meshRecord, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.records) >= st.maxMeshes {
		return nil, fmt.Errorf("mesh store full (%d meshes resident); delete one first", len(st.records))
	}
	st.nextSeq++
	rec.id = fmt.Sprintf("m%d", st.nextSeq)
	rec.seq = st.nextSeq
	rec.created = time.Now()
	rec.ordering = "ORI"
	rec.qualityStale = true
	rec.storeLive()
	st.records[rec.id] = rec
	st.mutations.Add(1)
	return rec, nil
}

// restore re-registers a record deserialized from a snapshot, preserving
// its identity (id, seq, creation time, ordering, tenant). It bypasses the
// capacity bound — shrinking -max-meshes across a restart must not drop
// uploads — and advances nextSeq past the restored sequence so future Adds
// cannot collide with restored ids.
func (st *meshStore) restore(rec *meshRecord) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.records[rec.id]; ok {
		return fmt.Errorf("duplicate mesh id %q in snapshot", rec.id)
	}
	rec.qualityStale = true
	rec.storeLive()
	st.records[rec.id] = rec
	if rec.seq > st.nextSeq {
		st.nextSeq = rec.seq
	}
	return nil
}

// storeLive publishes the record's current mesh pointer to the lock-free
// mirror; callers hold mu's write lock (or the record is not yet shared).
func (rec *meshRecord) storeLive() {
	if rec.dim == 3 {
		rec.live.Store(any(rec.tet))
	} else {
		rec.live.Store(any(rec.mesh))
	}
}

// liveMesh returns the record's current mesh pointer (*lams.Mesh or
// *lams.TetMesh) without taking the mesh lock.
func (rec *meshRecord) liveMesh() any { return rec.live.Load() }

// Touch records a mesh-level mutation (a committed smooth or reorder) so
// the periodic snapshotter knows the resident state drifted from the last
// snapshot.
func (st *meshStore) Touch() { st.mutations.Add(1) }

// Mutations returns the mutation counter; see the field comment.
func (st *meshStore) Mutations() uint64 { return st.mutations.Load() }

// Seq returns the highest sequence number ever assigned, for snapshots.
func (st *meshStore) Seq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nextSeq
}

// Get returns the record for id, or nil.
func (st *meshStore) Get(id string) *meshRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.records[id]
}

// Delete removes the record for id, returning it (nil if absent) and
// whether the store is now empty.
func (st *meshStore) Delete(id string) (rec *meshRecord, empty bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.records[id]
	if !ok {
		return nil, len(st.records) == 0
	}
	delete(st.records, id)
	st.mutations.Add(1)
	return rec, len(st.records) == 0
}

// CountTenant returns how many resident meshes tenant owns. O(resident
// meshes), which the store bounds; called on mesh creation only.
func (st *meshStore) CountTenant(tenant string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, rec := range st.records {
		if rec.tenant == tenant {
			n++
		}
	}
	return n
}

// List returns the resident records in creation order.
func (st *meshStore) List() []*meshRecord {
	st.mu.Lock()
	out := make([]*meshRecord, 0, len(st.records))
	for _, rec := range st.records {
		out = append(out, rec)
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Len returns the number of resident meshes.
func (st *meshStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.records)
}
