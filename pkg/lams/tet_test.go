package lams_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"lams/pkg/lams"
)

func testTetMesh(t testing.TB, cells int) *lams.TetMesh {
	t.Helper()
	m, err := lams.GenerateTetCube(cells, cells, cells, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTetPipelineScheduleEquivalence is the acceptance harness at the
// public-API level: a cube tetrahedral mesh runs the full pipeline — build,
// BFS/RDR reorder, smooth, analyze — and the smoothed coordinates are
// bit-identical across every registered schedule and worker count, matching
// the serial static reference on the same reordered layout.
func TestTetPipelineScheduleEquivalence(t *testing.T) {
	ctx := context.Background()
	base := testTetMesh(t, 7)

	for _, ordering := range []string{"BFS", "RDR"} {
		re, err := lams.ReorderTet(base, ordering)
		if err != nil {
			t.Fatal(err)
		}
		if len(re.NewToOld) != base.NumVerts() {
			t.Fatalf("%s: permutation length %d", ordering, len(re.NewToOld))
		}

		ref := re.Mesh.Clone()
		refRes, err := lams.SmoothTet(ctx, ref, lams.WithMaxIterations(4), lams.WithTolerance(-1))
		if err != nil {
			t.Fatal(err)
		}
		if refRes.FinalQuality <= refRes.InitialQuality {
			t.Fatalf("%s: smoothing did not improve quality: %v -> %v",
				ordering, refRes.InitialQuality, refRes.FinalQuality)
		}

		for _, schedule := range lams.Schedules() {
			for _, workers := range []int{1, 2, 4, 8, 16} {
				name := fmt.Sprintf("%s/%s/workers=%d", ordering, schedule, workers)
				t.Run(name, func(t *testing.T) {
					m := re.Mesh.Clone()
					res, err := lams.SmoothTet(ctx, m,
						lams.WithMaxIterations(4),
						lams.WithTolerance(-1),
						lams.WithWorkers(workers),
						lams.WithSchedule(schedule))
					if err != nil {
						t.Fatal(err)
					}
					for v := range ref.Coords {
						if m.Coords[v] != ref.Coords[v] {
							t.Fatalf("vertex %d differs from serial reference", v)
						}
					}
					if res.FinalQuality != refRes.FinalQuality {
						t.Errorf("final quality = %v, want bit-identical %v", res.FinalQuality, refRes.FinalQuality)
					}
					if res.Accesses != refRes.Accesses {
						t.Errorf("accesses = %d, want %d", res.Accesses, refRes.Accesses)
					}
				})
			}
		}

		rep, err := lams.AnalyzeTetLocality(ctx, re.Mesh)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Accesses <= 0 || rep.MeanReuseDistance <= 0 {
			t.Errorf("%s: degenerate locality report %+v", ordering, rep)
		}
	}
}

// TestTetOrderingsReduceReuseDistance is the paper's claim carried to 3D:
// the locality orderings must not worsen — and RDR should improve — the
// mean reuse distance of the smoother's access stream relative to a random
// shuffle.
func TestTetOrderingsReduceReuseDistance(t *testing.T) {
	ctx := context.Background()
	base := testTetMesh(t, 8)

	random, err := lams.ReorderTet(base, "RANDOM")
	if err != nil {
		t.Fatal(err)
	}
	randomRep, err := lams.AnalyzeTetLocality(ctx, random.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	rdr, err := lams.ReorderTet(base, "RDR")
	if err != nil {
		t.Fatal(err)
	}
	rdrRep, err := lams.AnalyzeTetLocality(ctx, rdr.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	if rdrRep.MeanReuseDistance >= randomRep.MeanReuseDistance {
		t.Errorf("RDR mean reuse distance %v not better than RANDOM %v",
			rdrRep.MeanReuseDistance, randomRep.MeanReuseDistance)
	}
}

func TestBuildTetAndQualities(t *testing.T) {
	coords := []lams.Point3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 0, Y: 0, Z: 1}}
	m, err := lams.BuildTet(coords, [][4]int32{{0, 2, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Summary(); got.Verts != 4 || got.Tets != 1 {
		t.Errorf("summary = %+v", got)
	}
	if q := lams.TetGlobalQuality(m, nil); q <= 0 || q > 1 {
		t.Errorf("global quality = %v", q)
	}
	if vq := lams.TetVertexQualities(m, lams.TetEdgeRatio{}); len(vq) != 4 {
		t.Errorf("vertex qualities length %d", len(vq))
	}
	if tq := lams.TetQualities(m, nil); len(tq) != 1 || tq[0] <= 0 {
		t.Errorf("tet qualities = %v", tq)
	}
}

func TestTetSaveLoadRoundTrip(t *testing.T) {
	m := testTetMesh(t, 3)
	base := filepath.Join(t.TempDir(), "cube")
	if err := m.SaveFiles(base); err != nil {
		t.Fatal(err)
	}
	m2, err := lams.LoadTetMesh(base)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumVerts() != m.NumVerts() || m2.NumTets() != m.NumTets() {
		t.Errorf("round trip changed mesh: %s vs %s", m2.Summary(), m.Summary())
	}
}

// TestSmoothTetKernelsAndOptionValidation exercises each 3D kernel through
// the public options and pins the dimension cross-validation: 2D options
// with SmoothTet (and tet options with Smooth) fail loudly instead of being
// silently ignored.
func TestSmoothTetKernelsAndOptionValidation(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opts []lams.SmoothOption
	}{
		{"plain", nil},
		{"smart", []lams.SmoothOption{lams.WithTetKernel(lams.SmartTetKernel(nil))}},
		{"weighted", []lams.SmoothOption{lams.WithTetKernel(lams.WeightedTetKernel())}},
		{"constrained", []lams.SmoothOption{lams.WithTetKernel(lams.ConstrainedTetKernel(0.01))}},
		{"edge-ratio metric", []lams.SmoothOption{lams.WithTetMetric(lams.TetEdgeRatio{})}},
	} {
		m := testTetMesh(t, 4)
		opts := append(tc.opts, lams.WithMaxIterations(2), lams.WithTolerance(-1))
		res, err := lams.SmoothTet(ctx, m, opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Iterations != 2 {
			t.Errorf("%s: iterations = %d", tc.name, res.Iterations)
		}
	}

	m := testTetMesh(t, 3)
	if _, err := lams.SmoothTet(ctx, m, lams.WithKernel(lams.PlainKernel())); err == nil {
		t.Error("SmoothTet accepted a 2D kernel")
	}
	if _, err := lams.SmoothTet(ctx, m, lams.WithMetric(lams.EdgeRatio{})); err == nil {
		t.Error("SmoothTet accepted a 2D metric")
	}
	m2, err := lams.GenerateMesh("carabiner", 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lams.Smooth(ctx, m2, lams.WithTetKernel(lams.PlainTetKernel())); err == nil {
		t.Error("Smooth accepted a tet kernel")
	}
	if _, err := lams.Smooth(ctx, m2, lams.WithTetMetric(lams.MeanRatio{})); err == nil {
		t.Error("Smooth accepted a tet metric")
	}
}

// TestSmootherServesBothDimensions checks a single pooled engine instance
// alternating between 2D and 3D meshes matches fresh one-shot runs — the
// property the lamsd engine pool relies on.
func TestSmootherServesBothDimensions(t *testing.T) {
	ctx := context.Background()
	s := lams.NewSmoother()
	for i := 0; i < 2; i++ {
		tm := testTetMesh(t, 4)
		tmFresh := tm.Clone()
		res, err := s.SmoothTet(ctx, tm, lams.WithMaxIterations(2), lams.WithTolerance(-1), lams.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := lams.SmoothTet(ctx, tmFresh, lams.WithMaxIterations(2), lams.WithTolerance(-1))
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalQuality != fresh.FinalQuality {
			t.Errorf("pooled tet run quality %v != fresh %v", res.FinalQuality, fresh.FinalQuality)
		}
		for v := range tm.Coords {
			if tm.Coords[v] != tmFresh.Coords[v] {
				t.Fatal("pooled tet run differs from fresh run")
			}
		}

		m2, err := lams.GenerateMesh("carabiner", 400)
		if err != nil {
			t.Fatal(err)
		}
		m2Fresh := m2.Clone()
		if _, err := s.Smooth(ctx, m2, lams.WithMaxIterations(2), lams.WithTolerance(-1)); err != nil {
			t.Fatal(err)
		}
		if _, err := lams.Smooth(ctx, m2Fresh, lams.WithMaxIterations(2), lams.WithTolerance(-1)); err != nil {
			t.Fatal(err)
		}
		for v := range m2.Coords {
			if m2.Coords[v] != m2Fresh.Coords[v] {
				t.Fatal("pooled 2D run differs from fresh run after tet use")
			}
		}
		s.Reset()
	}
}
