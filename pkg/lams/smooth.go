package lams

import (
	"context"
	"fmt"
	"time"

	"lams/internal/faultinject"
	"lams/internal/parallel"
	"lams/internal/partition"
	"lams/internal/smooth"
)

// DefaultTol is the paper's quality convergence criterion (§5.1).
const DefaultTol = smooth.DefaultTol

// DefaultMaxIterations is the sweep cap applied when WithMaxIterations is
// not given.
const DefaultMaxIterations = 100

// SmoothResult reports a smoothing run: iterations executed, global quality
// before/after and per iteration, and the vertex-access count. 2D and 3D
// runs share this shape.
type SmoothResult = smooth.Result

// Kernel is the per-vertex update rule of a 2D smoothing sweep; see the
// *Kernel constructors. Custom kernels plug into the same engine.
type Kernel = smooth.Kernel

// PlainKernel is Eq. (1): move each vertex to the unweighted average of its
// neighbors (the default).
func PlainKernel() Kernel { return smooth.PlainKernel{} }

// SmartKernel keeps a move only when it does not decrease the vertex's
// local quality (serial). A nil metric means EdgeRatio.
func SmartKernel(met Metric) Kernel { return smooth.SmartKernel{Metric: met} }

// WeightedKernel averages neighbors with inverse-edge-length weights.
func WeightedKernel() Kernel { return smooth.WeightedKernel{} }

// ConstrainedKernel is the plain update with each per-sweep displacement
// clamped to maxDisplacement (> 0).
func ConstrainedKernel(maxDisplacement float64) Kernel {
	return smooth.ConstrainedKernel{MaxDisplacement: maxDisplacement}
}

// KernelNames lists the registered kernel names in canonical order: plain,
// smart, weighted, constrained. The same vocabulary configures Smooth (2D)
// and SmoothTet (3D).
func KernelNames() []string { return smooth.KernelNames() }

// KernelsByName resolves a registered kernel name into its 2D and 3D forms
// in one call — the name-based form of the *Kernel constructors, for
// services that select kernels from requests and serve both mesh kinds.
// met and tmet parameterize the smart kernels (nil selects the dimension
// defaults) and maxDisplacement the constrained kernel (required > 0 for
// it, ignored by the others). Both kernels come from one registry row, so
// the dimensions' vocabularies and validation cannot drift apart.
func KernelsByName(name string, met Metric, tmet TetMetric, maxDisplacement float64) (Kernel, TetKernel, error) {
	return smooth.KernelsByName(name, smooth.KernelConfig{
		Metric: met, TetMetric: tmet, MaxDisplacement: maxDisplacement,
	})
}

// DefaultSchedule is the chunk schedule used when WithSchedule is not
// given: the paper's OpenMP schedule(static) analogue.
const DefaultSchedule = parallel.ScheduleStatic

// Schedules lists the registered chunk-schedule names in presentation
// order: static, guided, stealing, then any schedules added through
// RegisterScheduler.
func Schedules() []string { return parallel.Schedules() }

// Scheduler distributes a sweep's index range across workers; see
// parallel.Scheduler for the exactly-once / contiguous-chunk contract a
// custom schedule must honor.
type Scheduler = parallel.Scheduler

// RegisterScheduler adds a custom chunk schedule to the registry, making it
// available to WithSchedule by name. It panics on a duplicate or empty
// name.
func RegisterScheduler(name string, factory func() Scheduler) {
	parallel.RegisterScheduler(name, factory)
}

// DefaultPartitioner is the decomposition strategy used when WithPartitioner
// is not given: greedy BFS growth into contiguous, balanced partitions.
const DefaultPartitioner = partition.BFS

// Partitioners lists the registered domain-decomposition strategy names in
// presentation order: bfs, bisect, then any strategies added through
// partition.Register.
func Partitioners() []string { return partition.Names() }

// smoothConfig collects SmoothOption settings. The scalar fields (workers,
// schedule, iteration and convergence controls, traversal, tracing) apply
// to 2D and 3D runs alike; the metric/kernel pairs are dimension-specific
// and validated by Smooth and SmoothTet respectively.
type smoothConfig struct {
	opt       smooth.Options // 2D metric/kernel plus all shared fields
	tetMetric TetMetric
	tetKernel TetKernel
}

// SmoothOption configures a smoothing run (2D or 3D; the dimension-specific
// options say which entry points accept them).
type SmoothOption func(*smoothConfig)

// WithWorkers sets the number of parallel workers (default 1). The visit
// sequence is statically partitioned into contiguous chunks, one per
// worker — the OpenMP schedule(static) analogue.
func WithWorkers(n int) SmoothOption {
	return func(c *smoothConfig) { c.opt.Workers = n }
}

// WithSchedule selects the registered chunk schedule that distributes the
// sweep across workers: "static" (the default, the OpenMP schedule(static)
// analogue), "guided" (decaying chunk sizes from a shared cursor), or
// "stealing" (per-worker contiguous ranges with randomized stealing).
// Jacobi updates make the smoothed coordinates bit-identical under every
// schedule — only load balance and locality change. An unknown name makes
// Smooth return an error listing the registered schedules (see Schedules).
func WithSchedule(name string) SmoothOption {
	return func(c *smoothConfig) { c.opt.Schedule = name }
}

// WithPartitions decomposes the mesh into k partitions and smooths with one
// engine per partition, exchanging halo (ghost-vertex) coordinates at every
// sweep barrier — the domain-decomposition execution mode. Jacobi updates
// make the smoothed coordinates, quality history, and access counts
// bit-identical to the single-engine run at any partition count; only the
// execution layout changes. k <= 1 selects the single engine. Partitioned
// runs reject in-place kernels (SmartKernel), WithGaussSeidel, and
// WithTrace. Applies to Smooth and SmoothTet alike.
func WithPartitions(k int) SmoothOption {
	return func(c *smoothConfig) { c.opt.Partitions = k }
}

// WithPartitioner selects the registered decomposition strategy used by
// WithPartitions: "bfs" (the default; greedy breadth-first growth into
// contiguous balanced partitions) or "bisect" (recursive coordinate
// bisection). An unknown name makes the run fail with an error listing the
// registered strategies (see Partitioners).
func WithPartitioner(name string) SmoothOption {
	return func(c *smoothConfig) { c.opt.Partitioner = name }
}

// WithMaxIterations caps the number of smoothing sweeps (default 100).
func WithMaxIterations(n int) SmoothOption {
	return func(c *smoothConfig) { c.opt.MaxIters = n }
}

// WithTolerance stops the run when an iteration improves global quality by
// less than tol (default DefaultTol). A negative tol disables the criterion
// so exactly the iteration cap runs.
func WithTolerance(tol float64) SmoothOption {
	return func(c *smoothConfig) { c.opt.Tol = tol }
}

// WithGoalQuality stops the run once global quality reaches q.
func WithGoalQuality(q float64) SmoothOption {
	return func(c *smoothConfig) { c.opt.GoalQuality = q }
}

// WithCheckEvery measures global quality every k-th sweep instead of after
// every sweep (default 1). Measurement costs a full pass over the mesh's
// elements; workloads that run many sweeps to convergence can amortize it
// across k sweeps. The semantics are documented on smooth.Options: the
// quality history records only the measured iterations, the convergence
// tolerance applies to the improvement since the previous measurement, the
// final executed sweep is always measured (so the reported final quality is
// exact), and the smoothed coordinates are unaffected. k == 0 selects the
// default cadence of 1; a negative k makes the run fail. Applies to Smooth
// and SmoothTet alike.
func WithCheckEvery(k int) SmoothOption {
	return func(c *smoothConfig) { c.opt.CheckEvery = k }
}

// WithMetric sets the 2D quality metric (default EdgeRatio). Smooth only;
// use WithTetMetric for tetrahedral runs.
func WithMetric(met Metric) SmoothOption {
	return func(c *smoothConfig) { c.opt.Metric = met }
}

// WithKernel sets the 2D per-vertex update rule (default PlainKernel).
// Smooth only; use WithTetKernel for tetrahedral runs.
func WithKernel(k Kernel) SmoothOption {
	return func(c *smoothConfig) { c.opt.Kernel = k }
}

// WithTetMetric sets the tetrahedral quality metric (default MeanRatio).
// SmoothTet only.
func WithTetMetric(met TetMetric) SmoothOption {
	return func(c *smoothConfig) { c.tetMetric = met }
}

// WithTetKernel sets the tetrahedral per-vertex update rule (default
// PlainTetKernel). SmoothTet only.
func WithTetKernel(k TetKernel) SmoothOption {
	return func(c *smoothConfig) { c.tetKernel = k }
}

// WithStorageOrderTraversal sweeps the interior vertices in storage order
// instead of the paper's quality-greedy traversal (an ablation).
func WithStorageOrderTraversal() SmoothOption {
	return func(c *smoothConfig) { c.opt.Traversal = smooth.StorageOrder }
}

// WithGaussSeidel applies each update in place (serial), instead of the
// default Jacobi buffering that makes results independent of ordering and
// worker count.
func WithGaussSeidel() SmoothOption {
	return func(c *smoothConfig) { c.opt.GaussSeidel = true }
}

// WithTrace records every vertex access on tb (which needs one stream per
// worker) for locality analysis.
func WithTrace(tb *TraceBuffer) SmoothOption {
	return func(c *smoothConfig) { c.opt.Trace = tb }
}

// WithProgress observes the run's convergence live: fn is called serially
// from the converge loop with the initial measurement (iteration 0) and
// then after every measured sweep — the same points the result's
// QualityHistory records (so with WithCheckEvery(k) it fires every k-th
// sweep). fn must be fast and must not smooth reentrantly; services use it
// to surface async-job progress. Applies to Smooth and SmoothTet alike.
func WithProgress(fn func(iteration int, quality float64)) SmoothOption {
	return func(c *smoothConfig) { c.opt.Progress = fn }
}

// Checkpoint is a self-contained snapshot of a smoothing run emitted by
// WithCheckpoint and accepted by WithResume: coordinates, iteration and
// access counters, quality history, and a configuration fingerprint. A run
// resumed from a Checkpoint finishes bit-identical — coordinates,
// iterations, accesses, quality history — to the uninterrupted run, and
// may do so under a different worker count, schedule, or partitioning
// (the fingerprint covers only trajectory-affecting configuration).
// Checkpoints serialize losslessly through encoding/json, so services
// persist them for crash recovery.
type Checkpoint = smooth.Checkpoint

// WithCheckpoint calls fn serially from the converge loop with a snapshot
// of the run after every WithCheckpointEvery-th measured sweep that did
// not end the run. The snapshot owns its memory, so fn may hand it to a
// persistence goroutine. Applies to Smooth and SmoothTet alike.
func WithCheckpoint(fn func(Checkpoint)) SmoothOption {
	return func(c *smoothConfig) { c.opt.Checkpoint = fn }
}

// WithCheckpointEvery emits a checkpoint every k-th measured sweep
// (default 1; see WithCheckEvery for the measurement cadence itself).
// CheckpointInterval computes the Young/Daly optimum from measured costs.
func WithCheckpointEvery(k int) SmoothOption {
	return func(c *smoothConfig) { c.opt.CheckpointEvery = k }
}

// WithResume restarts the run from cp instead of the mesh's current
// coordinates: the snapshot's coordinates are restored and the counters
// and quality history continue from their checkpointed values. The
// checkpoint must come from a run with the same trajectory-affecting
// configuration (kernel, metric, tolerances, caps, cadence, traversal) on
// a mesh of the same dimension and size; workers, schedule, and
// partitions may differ freely.
func WithResume(cp *Checkpoint) SmoothOption {
	return func(c *smoothConfig) { c.opt.Resume = cp }
}

// CheckpointInterval returns the Young/Daly optimal checkpoint period —
// sqrt(2·C·MTBF), with C the measured cost of one checkpoint — expressed
// in sweeps of the given measured cost (at least 1). Feed the result to
// WithCheckpointEvery to compute the cadence instead of guessing it.
func CheckpointInterval(sweepCost, checkpointCost, mtbf time.Duration) int {
	return smooth.CheckpointInterval(sweepCost, checkpointCost, mtbf)
}

// FaultSet is a set of named, deterministically armed fault-injection
// points (see internal/faultinject). Production code leaves it nil.
type FaultSet = faultinject.Set

// WithFaultInjection arms the run's fault-injection points (one per sweep,
// plus the halo-exchange points on partitioned runs): when an armed point
// fires, the run aborts with an error wrapping faultinject.ErrInjected.
// Chaos testing only; a nil set is the production default and costs one
// nil check per sweep.
func WithFaultInjection(fs *FaultSet) SmoothOption {
	return func(c *smoothConfig) { c.opt.Faults = fs }
}

func buildOptions(opts []SmoothOption) (smooth.Options, error) {
	var c smoothConfig
	for _, opt := range opts {
		opt(&c)
	}
	if c.tetMetric != nil || c.tetKernel != nil {
		return smooth.Options{}, fmt.Errorf("lams: WithTetMetric/WithTetKernel select tetrahedral rules; use them with SmoothTet, not Smooth")
	}
	return c.opt, nil
}

func buildOptions3(opts []SmoothOption) (smooth.Options, error) {
	var c smoothConfig
	for _, opt := range opts {
		opt(&c)
	}
	if c.opt.Metric != nil || c.opt.Kernel != nil {
		return smooth.Options{}, fmt.Errorf("lams: WithMetric/WithKernel select 2D rules; use WithTetMetric/WithTetKernel with SmoothTet")
	}
	o := c.opt
	o.TetMetric = c.tetMetric
	o.TetKernel = c.tetKernel
	return o, nil
}

// Smooth runs Laplacian smoothing on m in place and returns the run
// statistics. The context cancels between iterations and worker chunks; on
// cancellation the mesh holds the last completed sweep's coordinates.
func Smooth(ctx context.Context, m *Mesh, opts ...SmoothOption) (SmoothResult, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return SmoothResult{}, err
	}
	return smooth.RunContext(ctx, m, o)
}

// SmoothTraced smooths m in place for exactly iters iterations (ignoring
// the convergence criterion) while recording the per-worker access trace,
// and returns both.
func SmoothTraced(ctx context.Context, m *Mesh, workers, iters int) (SmoothResult, *TraceBuffer, error) {
	tb := NewTraceBuffer(workers)
	res, err := Smooth(ctx, m,
		WithWorkers(workers),
		WithMaxIterations(iters),
		WithTolerance(-1),
		WithTrace(tb))
	return res, tb, err
}

// Smoother is a reusable smoothing engine: it keeps the visit-sequence,
// next-coordinate, and quality scratch buffers across runs, so services
// that smooth many meshes (or one mesh repeatedly) stop reallocating on the
// hot path. The one dimension-generic engine underneath serves triangular
// and tetrahedral meshes alike from a single pooled instance. Not safe for
// concurrent use; the zero value is ready.
type Smoother struct {
	engine smooth.Smoother

	// The partitioned driver is allocated on first use: most Smoother
	// holders never run partitioned, and the driver caches a per-mesh
	// decomposition worth keeping across runs when they do.
	parted *smooth.PartitionedSmoother
}

// NewSmoother returns a reusable smoothing engine.
func NewSmoother() *Smoother { return &Smoother{} }

// Smooth is like the package-level Smooth but reuses the engine's buffers.
// Options with WithPartitions(k > 1) route to the engine's partitioned
// driver, which additionally caches the mesh decomposition across runs.
func (s *Smoother) Smooth(ctx context.Context, m *Mesh, opts ...SmoothOption) (SmoothResult, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return SmoothResult{}, err
	}
	if o.Partitions > 1 {
		if s.parted == nil {
			s.parted = smooth.NewPartitionedSmoother()
		}
		return s.parted.Run(ctx, m, o)
	}
	return s.engine.Run(ctx, m, o)
}

// SmoothTet is like the package-level SmoothTet but reuses the engine's
// buffers. Options with WithPartitions(k > 1) route to the engine's
// partitioned driver, which additionally caches the mesh decomposition
// across runs.
func (s *Smoother) SmoothTet(ctx context.Context, m *TetMesh, opts ...SmoothOption) (SmoothResult, error) {
	o, err := buildOptions3(opts)
	if err != nil {
		return SmoothResult{}, err
	}
	if o.Partitions > 1 {
		if s.parted == nil {
			s.parted = smooth.NewPartitionedSmoother()
		}
		return s.parted.RunTet(ctx, m, o)
	}
	return s.engine.RunTet(ctx, m, o)
}

// Reset releases the engine's scratch buffers and any cached mesh
// decompositions. Engine pools call it when parking an engine that last
// smoothed an unusually large mesh, so idle engines do not pin their
// high-water-mark memory; the buffers re-grow on the next run.
func (s *Smoother) Reset() {
	s.engine.Reset()
	s.parted = nil
}

// DropMeshCache releases any per-mesh state the engine caches for m (the
// partitioned driver keeps a mesh decomposition warm across runs), and
// reports whether anything was dropped. m is the *Mesh or *TetMesh the
// cache would reference; services call this when a mesh is evicted so a
// warm pooled engine cannot pin the deleted mesh — and its O(mesh)
// decomposition — until the whole pool is trimmed.
func (s *Smoother) DropMeshCache(m any) bool {
	if s.parted == nil {
		return false
	}
	if cm := s.parted.CachedMesh(); cm != nil && any(cm) == m {
		s.parted = nil
		return true
	}
	if cm := s.parted.CachedTetMesh(); cm != nil && any(cm) == m {
		s.parted = nil
		return true
	}
	return false
}

// DropPartitionCaches unconditionally releases the partitioned driver and
// its cached decomposition, keeping the rest of the engine's
// (mesh-agnostic) scratch warm. The conservative form of DropMeshCache for
// callers that no longer know which meshes are stale.
func (s *Smoother) DropPartitionCaches() { s.parted = nil }
