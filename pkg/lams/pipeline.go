package lams

import (
	"context"
	"fmt"
)

// PipelineResult collects the outputs of Run's stages.
type PipelineResult struct {
	// Mesh is the final mesh: reordered, and smoothed unless smoothing was
	// disabled.
	Mesh *Mesh
	// Reordered holds the ordering bookkeeping (permutation, order time).
	Reordered *Reordered
	// Smooth reports the smoothing run (zero value when disabled).
	Smooth SmoothResult
	// Locality is the locality analysis of the reordered mesh, non-nil only
	// when WithLocalityAnalysis was given. It is measured from the
	// pre-smoothing state, matching the paper's methodology.
	Locality *LocalityReport
}

type pipelineConfig struct {
	source      func() (*Mesh, error)
	ordering    string
	smoothOpts  []SmoothOption
	noSmoothing bool
	analyze     bool
	analyzeOpts []AnalyzeOption
}

// PipelineOption configures Run.
type PipelineOption func(*pipelineConfig)

// FromDomain generates the named test domain at roughly targetVerts
// vertices as the pipeline input.
func FromDomain(name string, targetVerts int) PipelineOption {
	return func(c *pipelineConfig) {
		c.source = func() (*Mesh, error) { return GenerateMesh(name, targetVerts) }
	}
}

// FromFiles loads a Triangle-format mesh (base.node, base.ele) as the
// pipeline input.
func FromFiles(base string) PipelineOption {
	return func(c *pipelineConfig) {
		c.source = func() (*Mesh, error) { return LoadMesh(base) }
	}
}

// FromMesh uses an existing mesh as the pipeline input. The mesh is not
// modified: the ordering stage copies it.
func FromMesh(m *Mesh) PipelineOption {
	return func(c *pipelineConfig) {
		c.source = func() (*Mesh, error) { return m, nil }
	}
}

// WithOrdering selects the vertex ordering stage by registry name
// (default RDR, the paper's contribution; ORI keeps the input order).
func WithOrdering(name string) PipelineOption {
	return func(c *pipelineConfig) { c.ordering = name }
}

// WithSmoothing passes options to the smoothing stage.
func WithSmoothing(opts ...SmoothOption) PipelineOption {
	return func(c *pipelineConfig) { c.smoothOpts = append(c.smoothOpts, opts...) }
}

// WithoutSmoothing skips the smoothing stage (build, order, and optionally
// analyze only).
func WithoutSmoothing() PipelineOption {
	return func(c *pipelineConfig) { c.noSmoothing = true }
}

// WithLocalityAnalysis enables the analyze stage on the reordered mesh.
func WithLocalityAnalysis(opts ...AnalyzeOption) PipelineOption {
	return func(c *pipelineConfig) {
		c.analyze = true
		c.analyzeOpts = append(c.analyzeOpts, opts...)
	}
}

// Run executes the paper's pipeline — build (or load) a mesh, apply a
// locality ordering, optionally analyze the ordering's locality, and smooth
// — returning every stage's output. A mesh source option (FromDomain,
// FromFiles, or FromMesh) is required; everything else has defaults.
func Run(ctx context.Context, opts ...PipelineOption) (*PipelineResult, error) {
	cfg := pipelineConfig{ordering: "RDR"}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.source == nil {
		return nil, fmt.Errorf("lams: Run needs a mesh source (FromDomain, FromFiles, or FromMesh)")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	m, err := cfg.source()
	if err != nil {
		return nil, fmt.Errorf("lams: building mesh: %w", err)
	}
	re, err := Reorder(m, cfg.ordering)
	if err != nil {
		return nil, err
	}
	res := &PipelineResult{Mesh: re.Mesh, Reordered: re}

	if cfg.analyze {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Locality, err = AnalyzeLocality(ctx, re.Mesh, cfg.analyzeOpts...)
		if err != nil {
			return nil, err
		}
	}
	if !cfg.noSmoothing {
		res.Smooth, err = Smooth(ctx, re.Mesh, cfg.smoothOpts...)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}
