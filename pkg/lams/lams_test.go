package lams_test

import (
	"context"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"

	"lams/pkg/lams"
)

func testMesh(t testing.TB, n int) *lams.Mesh {
	t.Helper()
	m, err := lams.GenerateMesh("carabiner", n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenerateAndQuality(t *testing.T) {
	m := testMesh(t, 1500)
	if m.NumVerts() == 0 || m.NumTris() == 0 {
		t.Fatalf("empty mesh: %s", m.Summary())
	}
	q := lams.GlobalQuality(m, nil)
	if q <= 0 || q > 1 {
		t.Errorf("global quality %v out of (0,1]", q)
	}
	if got := len(lams.VertexQualities(m, nil)); got != m.NumVerts() {
		t.Errorf("vertex qualities length %d", got)
	}
	if len(lams.Domains()) != 9 {
		t.Errorf("Domains() = %v, want the paper's nine", lams.Domains())
	}
}

func TestReorderAndOrderings(t *testing.T) {
	m := testMesh(t, 1500)
	for _, name := range lams.Orderings() {
		re, err := lams.Reorder(m, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if re.Mesh.NumVerts() != m.NumVerts() {
			t.Errorf("%s: vertex count changed", name)
		}
		if len(re.NewToOld) != m.NumVerts() {
			t.Errorf("%s: permutation length %d", name, len(re.NewToOld))
		}
	}
	if _, err := lams.Reorder(m, "NOPE"); err == nil {
		t.Error("unknown ordering accepted")
	}
	ord, err := lams.OrderingByName("RDR")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lams.ReorderWith(m, ord); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothFunctionalOptions(t *testing.T) {
	m := testMesh(t, 1500)
	res, err := lams.Smooth(context.Background(), m,
		lams.WithMaxIterations(5),
		lams.WithTolerance(-1),
		lams.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 5 {
		t.Errorf("iterations = %d, want 5", res.Iterations)
	}
	if res.FinalQuality <= res.InitialQuality {
		t.Errorf("quality did not improve: %v -> %v", res.InitialQuality, res.FinalQuality)
	}
}

// TestSmoothSchedules is the public-API face of the cross-schedule
// equivalence guarantee: every name Schedules() reports works through
// WithSchedule, and the smoothed coordinates are bit-identical to the
// static default at every worker count; an unregistered name errors with
// the known names.
func TestSmoothSchedules(t *testing.T) {
	schedules := lams.Schedules()
	for _, want := range []string{"static", "guided", "stealing"} {
		if !slices.Contains(schedules, want) {
			t.Fatalf("Schedules() = %v missing %q", schedules, want)
		}
	}

	base := testMesh(t, 1500)
	ref := base.Clone()
	refRes, err := lams.Smooth(context.Background(), ref,
		lams.WithMaxIterations(4), lams.WithTolerance(-1))
	if err != nil {
		t.Fatal(err)
	}
	for _, schedule := range schedules {
		for _, workers := range []int{2, 8} {
			m := base.Clone()
			res, err := lams.Smooth(context.Background(), m,
				lams.WithSchedule(schedule),
				lams.WithWorkers(workers),
				lams.WithMaxIterations(4),
				lams.WithTolerance(-1))
			if err != nil {
				t.Fatalf("%s/%d: %v", schedule, workers, err)
			}
			if res.FinalQuality != refRes.FinalQuality || res.Accesses != refRes.Accesses {
				t.Errorf("%s/%d: result diverged from static: %+v vs %+v", schedule, workers, res, refRes)
			}
			for i := range ref.Coords {
				if m.Coords[i] != ref.Coords[i] {
					t.Fatalf("%s/%d: vertex %d differs bit-wise from the static run", schedule, workers, i)
				}
			}
		}
	}

	if _, err := lams.Smooth(context.Background(), base.Clone(), lams.WithSchedule("fifo")); err == nil {
		t.Error("unknown schedule accepted")
	} else if !strings.Contains(err.Error(), "stealing") {
		t.Errorf("error %q does not list the registered schedules", err)
	}
}

// TestSmoothCheckEvery is the public-API face of the measurement cadence:
// WithCheckEvery(k) must leave the smoothed coordinates bit-identical to
// the measure-every-sweep run, record only the measured iterations in the
// history, always measure the final sweep, reject k < 0, and apply to
// tetrahedral runs too.
func TestSmoothCheckEvery(t *testing.T) {
	base := testMesh(t, 1500)
	ctx := context.Background()
	ref := base.Clone()
	refRes, err := lams.Smooth(ctx, ref, lams.WithMaxIterations(6), lams.WithTolerance(-1))
	if err != nil {
		t.Fatal(err)
	}
	got := base.Clone()
	res, err := lams.Smooth(ctx, got,
		lams.WithMaxIterations(6),
		lams.WithTolerance(-1),
		lams.WithWorkers(4),
		lams.WithCheckEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref.Coords {
		if got.Coords[v] != ref.Coords[v] {
			t.Fatalf("vertex %d differs bit-wise under WithCheckEvery", v)
		}
	}
	if len(res.QualityHistory) != 2 { // iterations 4 and the final 6th
		t.Errorf("history length = %d, want 2", len(res.QualityHistory))
	}
	if res.FinalQuality != refRes.FinalQuality {
		t.Errorf("final quality = %v, want bit-identical %v", res.FinalQuality, refRes.FinalQuality)
	}

	if _, err := lams.Smooth(ctx, base.Clone(), lams.WithCheckEvery(-1)); err == nil {
		t.Error("negative check-every accepted")
	}

	tet, err := lams.GenerateTetCubeVerts(800, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := lams.SmoothTet(ctx, tet,
		lams.WithMaxIterations(5),
		lams.WithTolerance(-1),
		lams.WithCheckEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(tres.QualityHistory) != 3 { // iterations 2, 4, and the final 5th
		t.Errorf("tet history length = %d, want 3", len(tres.QualityHistory))
	}
}

func TestSmoothCancellation(t *testing.T) {
	m := testMesh(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lams.Smooth(ctx, m, lams.WithMaxIterations(10)); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSmootherReuseAndKernels(t *testing.T) {
	base := testMesh(t, 1200)
	s := lams.NewSmoother()
	for _, kern := range []lams.Kernel{
		lams.PlainKernel(),
		lams.SmartKernel(nil),
		lams.WeightedKernel(),
		lams.ConstrainedKernel(0.05),
	} {
		m := base.Clone()
		res, err := s.Smooth(context.Background(), m,
			lams.WithKernel(kern),
			lams.WithMaxIterations(3),
			lams.WithTolerance(-1))
		if err != nil {
			t.Fatalf("%s: %v", kern.Name(), err)
		}
		if res.Iterations != 3 {
			t.Errorf("%s: iterations = %d", kern.Name(), res.Iterations)
		}
	}
}

func TestSmoothTraced(t *testing.T) {
	m := testMesh(t, 1000)
	res, tb, err := lams.SmoothTraced(context.Background(), m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Iterations() != 2 {
		t.Errorf("trace iterations = %d", tb.Iterations())
	}
	if int64(tb.Total()) != res.Accesses {
		t.Errorf("trace total %d != accesses %d", tb.Total(), res.Accesses)
	}
}

func TestAnalyzeLocalityRDRBeatsRandom(t *testing.T) {
	m := testMesh(t, 2000)
	reports := map[string]*lams.LocalityReport{}
	for _, name := range []string{"RANDOM", "RDR"} {
		re, err := lams.Reorder(m, name)
		if err != nil {
			t.Fatal(err)
		}
		before := re.Mesh.Coords[0]
		rep, err := lams.AnalyzeLocality(context.Background(), re.Mesh)
		if err != nil {
			t.Fatal(err)
		}
		if re.Mesh.Coords[0] != before {
			t.Errorf("%s: AnalyzeLocality mutated its input mesh", name)
		}
		if rep.Iterations != 1 || rep.Accesses == 0 || len(rep.MissRates) != 3 {
			t.Errorf("%s: malformed report %+v", name, rep)
		}
		reports[name] = rep
	}
	// The paper's headline: RDR collapses reuse distances relative to the
	// worst-case ordering.
	if reports["RDR"].MeanReuseDistance >= reports["RANDOM"].MeanReuseDistance {
		t.Errorf("RDR mean reuse distance %v not below RANDOM %v",
			reports["RDR"].MeanReuseDistance, reports["RANDOM"].MeanReuseDistance)
	}
	if reports["RDR"].PenaltyCycles >= reports["RANDOM"].PenaltyCycles {
		t.Errorf("RDR penalty %v not below RANDOM %v",
			reports["RDR"].PenaltyCycles, reports["RANDOM"].PenaltyCycles)
	}
}

func TestPipelineRun(t *testing.T) {
	res, err := lams.Run(context.Background(),
		lams.FromDomain("crake", 1500),
		lams.WithOrdering("BFS"),
		lams.WithSmoothing(lams.WithMaxIterations(5), lams.WithTolerance(-1)),
		lams.WithLocalityAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reordered.Ordering != "BFS" {
		t.Errorf("ordering = %q", res.Reordered.Ordering)
	}
	if res.Smooth.Iterations != 5 {
		t.Errorf("smooth iterations = %d", res.Smooth.Iterations)
	}
	if res.Locality == nil || res.Locality.Accesses == 0 {
		t.Errorf("locality report missing: %+v", res.Locality)
	}
	if res.Mesh == nil || res.Mesh.NumVerts() == 0 {
		t.Error("pipeline returned no mesh")
	}
}

func TestPipelineNeedsSource(t *testing.T) {
	if _, err := lams.Run(context.Background()); err == nil {
		t.Error("pipeline without a source accepted")
	}
}

func TestPipelineFromMeshDoesNotMutateInput(t *testing.T) {
	m := testMesh(t, 1000)
	before := append([]lams.Point(nil), m.Coords...)
	if _, err := lams.Run(context.Background(), lams.FromMesh(m),
		lams.WithSmoothing(lams.WithMaxIterations(3), lams.WithTolerance(-1))); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if m.Coords[i] != before[i] {
			t.Fatalf("input mesh vertex %d mutated", i)
		}
	}
}

func TestMeshRoundTripFiles(t *testing.T) {
	m := testMesh(t, 800)
	base := filepath.Join(t.TempDir(), "m")
	if err := m.SaveFiles(base); err != nil {
		t.Fatal(err)
	}
	m2, err := lams.LoadMesh(base)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumVerts() != m.NumVerts() || m2.NumTris() != m.NumTris() {
		t.Errorf("round trip changed mesh: %s vs %s", m2.Summary(), m.Summary())
	}
}

// registerStubOnce guards the test registration so repeated in-process runs
// (go test -count=2, -cpu lists) do not trip the registry's duplicate panic.
var registerStubOnce sync.Once

func TestRegisterOrderingExtends(t *testing.T) {
	registerStubOnce.Do(func() {
		lams.RegisterOrdering("ZZZ-PUBLIC-STUB", func() lams.Ordering { return identityOrdering{} })
	})
	m := testMesh(t, 600)
	re, err := lams.Reorder(m, "ZZZ-PUBLIC-STUB")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range re.NewToOld {
		if int32(i) != v {
			t.Fatalf("identity ordering permuted vertex %d -> %d", i, v)
		}
	}
}

type identityOrdering struct{}

func (identityOrdering) Name() string { return "ZZZ-PUBLIC-STUB" }

func (identityOrdering) Compute(g lams.Graph, _ []float64) ([]int32, error) {
	perm := make([]int32, g.NumVerts())
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm, nil
}
