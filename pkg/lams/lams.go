// Package lams is the public API of the Locality-Aware Laplacian Mesh
// Smoothing library (Aupy, Park, Raghavan; ICPP 2016, arXiv:1606.00803).
//
// It exposes the paper's pipeline as four composable stages:
//
//	build   — GenerateMesh / LoadMesh construct a triangular mesh;
//	order   — Reorder relabels the vertices with a locality ordering
//	          (RDR, BFS, Hilbert, …) from the extensible ordering registry;
//	smooth  — Smooth (or a reusable Smoother) runs Laplacian smoothing with
//	          functional options and context cancellation;
//	analyze — AnalyzeLocality traces the smoother and reports reuse
//	          distances, simulated cache miss rates, and penalty cycles.
//
// Run chains all four stages in one call. The heavy data structures (Mesh,
// orderings, quality metrics, trace buffers) are aliases of the internal
// implementation packages, so values returned here interoperate with every
// stage without conversion.
//
// Smoothing scales along two independent axes: WithWorkers parallelizes
// the sweeps and quality measurements inside one engine, and
// WithPartitions decomposes the mesh into halo-carrying partitions served
// by one engine each, synchronized per sweep. Both axes (and WithSchedule,
// in any combination) are pure performance decisions — results are
// bit-identical to the serial single-engine run.
package lams

import (
	"lams/internal/core"
	"lams/internal/domains"
	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/order"
	"lams/internal/quality"
	"lams/internal/trace"
)

// Mesh is a 2-D triangular mesh (vertex coordinates, triangles, adjacency).
type Mesh = mesh.Mesh

// MeshStats summarizes a mesh (vertex/triangle/boundary counts).
type MeshStats = mesh.Stats

// Point is a 2-D coordinate.
type Point = geom.Point

// GenerateMesh builds the named test domain (one of the paper's Table 1
// meshes; see Domains) with roughly targetVerts vertices.
func GenerateMesh(name string, targetVerts int) (*Mesh, error) {
	return mesh.Generate(name, targetVerts)
}

// LoadMesh reads a Triangle-format mesh from base.node and base.ele.
// Mesh.SaveFiles is the inverse.
func LoadMesh(base string) (*Mesh, error) {
	return mesh.LoadFiles(base)
}

// Domains lists the generatable test-mesh names (the paper's nine Table 1
// domains).
func Domains() []string { return domains.Names() }

// Metric scores a triangle's shape in [0, 1]; 1 is ideal (equilateral).
type Metric = quality.Metric

// EdgeRatio is the paper's edge-length-ratio metric (the default).
type EdgeRatio = quality.EdgeRatio

// MinAngle is the normalized minimum-angle metric.
type MinAngle = quality.MinAngle

// AspectRatio is the normalized aspect-ratio metric.
type AspectRatio = quality.AspectRatio

// GlobalQuality returns the mesh-wide quality: the average vertex quality.
// A nil metric means EdgeRatio.
func GlobalQuality(m *Mesh, met Metric) float64 {
	return quality.Global(m, orDefaultMetric(met))
}

// VertexQualities returns every vertex's quality: the average metric value
// of its attached triangles. A nil metric means EdgeRatio.
func VertexQualities(m *Mesh, met Metric) []float64 {
	return quality.VertexQualities(m, orDefaultMetric(met))
}

// TriangleQualities returns the metric value of every triangle. A nil
// metric means EdgeRatio.
func TriangleQualities(m *Mesh, met Metric) []float64 {
	return quality.TriangleQualities(m, orDefaultMetric(met))
}

func orDefaultMetric(met Metric) Metric {
	if met == nil {
		return EdgeRatio{}
	}
	return met
}

// TraceBuffer records the smoother's per-worker vertex-access streams for
// locality analysis.
type TraceBuffer = trace.Buffer

// NewTraceBuffer returns a trace buffer with one stream per worker.
func NewTraceBuffer(workers int) *TraceBuffer { return trace.NewBuffer(workers) }

// Ordering computes a vertex permutation for a mesh. Position k of the
// result holds the index (in the input mesh) of the vertex to store k-th.
type Ordering = order.Ordering

// Graph is the adjacency view an Ordering traverses: CSR vertex
// neighborhoods plus the boundary/interior partition. Both *Mesh and
// *TetMesh implement it, which is why one registry of orderings serves both
// dimensions; custom orderings registered through RegisterOrdering receive
// their input as a Graph.
type Graph = order.Graph

// SpatialGraph is the optional coordinate view of a Graph: space-filling-
// curve keys over the vertex positions. Both mesh types implement it; the
// curve orderings (HILBERT, MORTON) require it.
type SpatialGraph = order.Spatial

// Reordered is a mesh relabeled by an ordering, with the permutation and
// the time the ordering took (the pre-computation cost the paper's §5.4
// weighs against the smoothing gain).
type Reordered = core.Reordered

// Orderings lists the registered ordering names in report order: ORI,
// RANDOM, BFS, DFS, RDR, RCM, HILBERT, MORTON, CPACK, then the
// parameterized variants BFS-WORST (BFS rooted at the worst-quality
// vertex) and RDR-DESC (RDR with reversed quality comparisons), plus any
// orderings added through RegisterOrdering.
func Orderings() []string { return order.Names() }

// OrderingByName returns the named registered ordering with default
// parameters.
func OrderingByName(name string) (Ordering, error) { return order.ByName(name) }

// RegisterOrdering adds a custom ordering to the registry, making it
// available to OrderingByName, Reorder, and Run by name. It panics on a
// duplicate or empty name.
func RegisterOrdering(name string, factory func() Ordering) { order.Register(name, factory) }

// Reorder relabels m's vertices with the named registered ordering and
// returns the renumbered mesh (the input is unchanged).
func Reorder(m *Mesh, orderingName string) (*Reordered, error) {
	return core.ReorderByName(m, orderingName)
}

// ReorderWith is Reorder with an explicit Ordering implementation.
func ReorderWith(m *Mesh, ord Ordering) (*Reordered, error) {
	return core.Reorder(m, ord)
}
