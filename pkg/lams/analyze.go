package lams

import (
	"context"
	"fmt"

	"lams/internal/cache"
	"lams/internal/reuse"
)

// CacheConfig describes a simulated cache hierarchy (levels, line size,
// miss penalties).
type CacheConfig = cache.Config

// WestmereCache returns the paper's Westmere-EX hierarchy at full size.
func WestmereCache() CacheConfig { return cache.Westmere() }

// ScaledCache returns the Westmere-EX hierarchy scaled down to a mesh of
// the given vertex count, so small test meshes exercise the same relative
// capacity pressure as the paper's full-size runs.
func ScaledCache(meshVerts int) CacheConfig { return cache.Scaled(meshVerts) }

// LocalityReport is the paper's §5.2 locality analysis of one smoothing
// configuration: reuse-distance statistics at cache-line granularity and a
// simulated cache hierarchy's miss rates and penalty cycles over the trace.
type LocalityReport struct {
	// Iterations is the number of smoothing sweeps traced.
	Iterations int
	// Accesses is the total number of vertex accesses in the trace.
	Accesses int64
	// Cache is the simulated hierarchy the miss rates refer to.
	Cache CacheConfig
	// MeanReuseDistance is the mean cache-line stack reuse distance.
	MeanReuseDistance float64
	// ReuseQ50, ReuseQ75 and ReuseQ90 are reuse-distance quantiles;
	// MaxReuseDistance is the largest finite distance observed.
	ReuseQ50, ReuseQ75, ReuseQ90, MaxReuseDistance int64
	// MissRates holds the simulated miss rate per cache level (L1, L2, L3).
	MissRates []float64
	// PenaltyCycles is the Eq. (2) cycle penalty of the misses on core 0.
	PenaltyCycles float64
}

// analyzeConfig collects AnalyzeOption settings.
type analyzeConfig struct {
	iters   int
	workers int
	cache   *CacheConfig
}

// AnalyzeOption configures AnalyzeLocality.
type AnalyzeOption func(*analyzeConfig)

// WithAnalysisIterations sets how many smoothing sweeps are traced
// (default 1).
func WithAnalysisIterations(n int) AnalyzeOption {
	return func(c *analyzeConfig) { c.iters = n }
}

// WithAnalysisWorkers sets the traced worker count (default 1). Reuse
// distances are computed on worker 0's stream.
func WithAnalysisWorkers(n int) AnalyzeOption {
	return func(c *analyzeConfig) { c.workers = n }
}

// WithAnalysisCache sets the simulated hierarchy (default ScaledCache for
// the analyzed mesh).
func WithAnalysisCache(cfg CacheConfig) AnalyzeOption {
	return func(c *analyzeConfig) { c.cache = &cfg }
}

// AnalyzeLocality traces Laplacian smoothing on a copy of m (the input mesh
// is unchanged) and reports the reuse-distance and cache behavior of its
// access stream. Analyze a mesh returned by Reorder to measure an
// ordering's locality.
func AnalyzeLocality(ctx context.Context, m *Mesh, opts ...AnalyzeOption) (*LocalityReport, error) {
	cfg := analyzeConfig{iters: 1, workers: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	ccfg := ScaledCache(m.NumVerts())
	if cfg.cache != nil {
		ccfg = *cfg.cache
	}

	res, tb, err := SmoothTraced(ctx, m.Clone(), cfg.workers, cfg.iters)
	if err != nil {
		return nil, fmt.Errorf("lams: tracing smoother: %w", err)
	}

	dists := reuse.StackDistances(reuse.Blocks(tb.Core(0), ccfg.VertsPerLine()))
	sum := reuse.Summarize(dists)
	qs, err := reuse.Quantiles(dists, []float64{0.5, 0.75, 0.9, 1})
	if err != nil {
		return nil, fmt.Errorf("lams: reuse quantiles: %w", err)
	}

	sim, err := cache.NewSim(ccfg, cfg.workers)
	if err != nil {
		return nil, fmt.Errorf("lams: cache simulator: %w", err)
	}
	if err := sim.RunTrace(tb); err != nil {
		return nil, fmt.Errorf("lams: simulating trace: %w", err)
	}
	stats := sim.Stats()
	rates := make([]float64, len(stats))
	for i, st := range stats {
		rates[i] = st.MissRate()
	}

	return &LocalityReport{
		Iterations:        res.Iterations,
		Accesses:          res.Accesses,
		Cache:             ccfg,
		MeanReuseDistance: sum.Mean,
		ReuseQ50:          qs[0],
		ReuseQ75:          qs[1],
		ReuseQ90:          qs[2],
		MaxReuseDistance:  qs[3],
		MissRates:         rates,
		PenaltyCycles:     sim.CorePenaltyCycles(0),
	}, nil
}
