package lams

import (
	"context"
	"fmt"

	"lams/internal/cache"
	"lams/internal/core"
	"lams/internal/geom"
	"lams/internal/mesh"
	"lams/internal/quality"
	"lams/internal/reuse"
	"lams/internal/smooth"
)

// The tetrahedral surface of the library: the same build -> order -> smooth
// -> analyze pipeline as the 2D API, over 3D meshes. Orderings come from
// the same registry (they traverse the shared adjacency abstraction), the
// smoothing engine shares the chunk schedulers and tracing, and the
// locality analysis runs the identical reuse-distance and cache machinery
// over the 3D access stream.

// TetMesh is a 3D tetrahedral mesh (vertex coordinates, tets, adjacency).
type TetMesh = mesh.TetMesh

// TetMeshStats summarizes a tetrahedral mesh (vertex/tet/boundary counts).
type TetMeshStats = mesh.TetStats

// Point3 is a 3D coordinate.
type Point3 = geom.Point3

// BuildTet assembles a tetrahedral mesh from vertices and tets, building
// the adjacency and boundary classification.
func BuildTet(coords []Point3, tets [][4]int32) (*TetMesh, error) {
	return mesh.NewTet(coords, tets)
}

// GenerateTetCube builds the structured unit-cube test mesh: nx x ny x nz
// grid cells, each split into six tetrahedra, with interior vertices
// displaced by a deterministic jitter of up to jitter*h per axis (0 keeps
// the regular grid).
func GenerateTetCube(nx, ny, nz int, jitter float64) (*TetMesh, error) {
	return mesh.GenerateTetCube(nx, ny, nz, jitter)
}

// GenerateTetCubeVerts builds the jittered cube mesh sized to roughly
// targetVerts vertices, mirroring GenerateMesh's size contract.
func GenerateTetCubeVerts(targetVerts int, jitter float64) (*TetMesh, error) {
	return mesh.GenerateTetCubeVerts(targetVerts, jitter)
}

// LoadTetMesh reads a TetGen-format mesh from base.node and base.ele
// (dimension 3). TetMesh.SaveFiles is the inverse.
func LoadTetMesh(base string) (*TetMesh, error) {
	return mesh.LoadTetFiles(base)
}

// TetMetric scores a tetrahedron's shape in [0, 1]; 1 is ideal (regular).
type TetMetric = quality.TetMetric

// MeanRatio is the normalized mean-ratio tet metric (the 3D default).
type MeanRatio = quality.MeanRatio3

// TetEdgeRatio is the edge-length-ratio metric lifted to tetrahedra.
type TetEdgeRatio = quality.EdgeRatio3

// TetGlobalQuality returns the mesh-wide quality: the average vertex
// quality. A nil metric means MeanRatio.
func TetGlobalQuality(m *TetMesh, met TetMetric) float64 {
	return quality.TetGlobal(m, orDefaultTetMetric(met))
}

// TetVertexQualities returns every vertex's quality: the average metric
// value of its attached tets. A nil metric means MeanRatio.
func TetVertexQualities(m *TetMesh, met TetMetric) []float64 {
	return quality.TetVertexQualities(m, orDefaultTetMetric(met))
}

// TetQualities returns the metric value of every tetrahedron. A nil metric
// means MeanRatio.
func TetQualities(m *TetMesh, met TetMetric) []float64 {
	return quality.TetQualities(m, orDefaultTetMetric(met))
}

func orDefaultTetMetric(met TetMetric) TetMetric {
	if met == nil {
		return MeanRatio{}
	}
	return met
}

// TetKernel is the per-vertex update rule of a 3D smoothing sweep; see the
// *TetKernel constructors.
type TetKernel = smooth.TetKernel

// PlainTetKernel is Eq. (1) in 3D: move each vertex to the unweighted
// average of its neighbors (the default).
func PlainTetKernel() TetKernel { return smooth.PlainKernel3{} }

// SmartTetKernel keeps a move only when it does not decrease the vertex's
// local quality (serial). A nil metric means MeanRatio.
func SmartTetKernel(met TetMetric) TetKernel { return smooth.SmartKernel3{Metric: met} }

// WeightedTetKernel averages neighbors with inverse-edge-length weights.
func WeightedTetKernel() TetKernel { return smooth.WeightedKernel3{} }

// ConstrainedTetKernel is the plain update with each per-sweep displacement
// clamped to maxDisplacement (> 0).
func ConstrainedTetKernel(maxDisplacement float64) TetKernel {
	return smooth.ConstrainedKernel3{MaxDisplacement: maxDisplacement}
}

// ReorderedTet is a tetrahedral mesh relabeled by an ordering, with the
// permutation and ordering time.
type ReorderedTet = core.ReorderedTet

// ReorderTet relabels m's vertices with the named registered ordering —
// the same registry the 2D path uses — and returns the renumbered mesh
// (the input is unchanged).
func ReorderTet(m *TetMesh, orderingName string) (*ReorderedTet, error) {
	return core.ReorderTetByName(m, orderingName)
}

// ReorderTetWith is ReorderTet with an explicit Ordering implementation.
func ReorderTetWith(m *TetMesh, ord Ordering) (*ReorderedTet, error) {
	return core.ReorderTet(m, ord)
}

// SmoothTet runs Laplacian smoothing on the tetrahedral mesh in place and
// returns the run statistics, accepting the same options as Smooth (with
// WithTetMetric/WithTetKernel in place of the 2D metric and kernel
// options). The context cancels between iterations and worker chunks.
func SmoothTet(ctx context.Context, m *TetMesh, opts ...SmoothOption) (SmoothResult, error) {
	o, err := buildOptions3(opts)
	if err != nil {
		return SmoothResult{}, err
	}
	return smooth.RunTetContext(ctx, m, o)
}

// SmoothTetTraced smooths m in place for exactly iters iterations while
// recording the per-worker access trace, and returns both.
func SmoothTetTraced(ctx context.Context, m *TetMesh, workers, iters int) (SmoothResult, *TraceBuffer, error) {
	tb := NewTraceBuffer(workers)
	res, err := SmoothTet(ctx, m,
		WithWorkers(workers),
		WithMaxIterations(iters),
		WithTolerance(-1),
		WithTrace(tb))
	return res, tb, err
}

// AnalyzeTetLocality traces Laplacian smoothing on a copy of m (the input
// mesh is unchanged) and reports the reuse-distance and cache behavior of
// its access stream — the identical analysis AnalyzeLocality runs for 2D
// meshes, over the 3D smoother's trace.
func AnalyzeTetLocality(ctx context.Context, m *TetMesh, opts ...AnalyzeOption) (*LocalityReport, error) {
	cfg := analyzeConfig{iters: 1, workers: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	ccfg := ScaledCache(m.NumVerts())
	if cfg.cache != nil {
		ccfg = *cfg.cache
	}

	res, tb, err := SmoothTetTraced(ctx, m.Clone(), cfg.workers, cfg.iters)
	if err != nil {
		return nil, fmt.Errorf("lams: tracing 3D smoother: %w", err)
	}

	dists := reuse.StackDistances(reuse.Blocks(tb.Core(0), ccfg.VertsPerLine()))
	sum := reuse.Summarize(dists)
	qs, err := reuse.Quantiles(dists, []float64{0.5, 0.75, 0.9, 1})
	if err != nil {
		return nil, fmt.Errorf("lams: reuse quantiles: %w", err)
	}

	sim, err := cache.NewSim(ccfg, cfg.workers)
	if err != nil {
		return nil, fmt.Errorf("lams: cache simulator: %w", err)
	}
	if err := sim.RunTrace(tb); err != nil {
		return nil, fmt.Errorf("lams: simulating trace: %w", err)
	}
	stats := sim.Stats()
	rates := make([]float64, len(stats))
	for i, st := range stats {
		rates[i] = st.MissRate()
	}

	return &LocalityReport{
		Iterations:        res.Iterations,
		Accesses:          res.Accesses,
		Cache:             ccfg,
		MeanReuseDistance: sum.Mean,
		ReuseQ50:          qs[0],
		ReuseQ75:          qs[1],
		ReuseQ90:          qs[2],
		MaxReuseDistance:  qs[3],
		MissRates:         rates,
		PenaltyCycles:     sim.CorePenaltyCycles(0),
	}, nil
}
